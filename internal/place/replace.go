package place

import (
	"fmt"

	"zoomie/internal/fpga"
	"zoomie/internal/synth"
)

// Replace performs incremental placement: everything outside the changed
// partition keeps its tile positions and frame addresses from the previous
// placement; the changed partition is re-placed from scratch inside its
// reserved region. The change must be confined to the declared partition —
// a cell appearing or moving anywhere else is an error, matching VTI's
// contract that recompilation scope is declared up front. Trailing hooks
// run on the finished placement, mirroring Place.
func Replace(prev *Placement, net *synth.ModuleNetlist, specs []PartitionSpec, changed string, hooks ...Hook) (*Placement, int64, error) {
	spec, ok := lookupSpec(specs, changed)
	if !ok {
		return nil, 0, fmt.Errorf("place: no partition %q", changed)
	}
	regions := prev.Regions[changed]
	if len(regions) == 0 {
		return nil, 0, fmt.Errorf("place: partition %q has no reserved region", changed)
	}

	p := &Placement{
		Device:      prev.Device,
		Regions:     prev.Regions,
		CellTile:    make(map[string]TilePos, len(prev.CellTile)),
		PartitionOf: make(map[string]string, len(prev.PartitionOf)),
		Usage:       make(map[string]fpga.ResourceVec, len(prev.Usage)),
		Utilization: make(map[string]float64, len(prev.Utilization)),
		StateMap:    fpga.NewStateMap(),
	}
	for k, v := range prev.Usage {
		p.Usage[k] = v
	}
	for k, v := range prev.Utilization {
		p.Utilization[k] = v
	}

	// Split the flattened netlist into the re-placed bucket and the
	// carried-over remainder. Carry-over is applied only after the
	// partition is re-placed: from-scratch placement places partitions
	// before static logic, and the refinement pass must see the same
	// CellTile context in both flows so an incremental compile lands every
	// partition cell on exactly the tile a cold compile would pick —
	// that bit-identity is what lets cache-served recompiles stand in for
	// full ones.
	var bucket, carry []synth.FlatCell
	var usage fpga.ResourceVec
	var err error
	net.Flatten(func(c synth.FlatCell) {
		if err != nil {
			return
		}
		if partitionFor(c, specs) == changed {
			bucket = append(bucket, c)
			usage.Add(c.Res)
			return
		}
		if _, had := prev.CellTile[c.Name]; !had {
			err = fmt.Errorf("place: cell %q is new but lies outside partition %q", c.Name, changed)
			return
		}
		carry = append(carry, c)
	})
	if err != nil {
		return nil, 0, err
	}

	// The re-placed partition must still fit its reserved region with the
	// original over-provisioning.
	var capacity fpga.ResourceVec
	for _, r := range regions {
		capacity.Add(r.Capacity(prev.Device))
	}
	er := usage
	for i := range er {
		er[i] = int(float64(er[i]) * (1 + spec.c()))
	}
	if !er.Fits(capacity) {
		return nil, 0, fmt.Errorf("place: partition %q grew beyond its reserved region (need %v, have %v)",
			changed, er, capacity)
	}
	p.Usage[changed] = usage
	p.Utilization[changed] = utilization(usage, capacity)

	if err := p.placePartition(changed, bucket); err != nil {
		return nil, 0, err
	}

	// Unchanged logic: positions and frame locations carry over verbatim.
	for _, c := range carry {
		p.CellTile[c.Name] = prev.CellTile[c.Name]
		p.PartitionOf[c.Name] = partitionFor(c, specs)
		if !c.IsState {
			continue
		}
		if loc, ok := prev.StateMap.Reg(c.Name); ok {
			if err := p.StateMap.AddReg(loc); err != nil {
				return nil, 0, err
			}
			continue
		}
		if loc, ok := prev.StateMap.Mem(c.Name); ok {
			if err := p.StateMap.AddMem(loc); err != nil {
				return nil, 0, err
			}
		}
	}
	for _, h := range hooks {
		h(p)
	}
	return p, p.WorkUnits, nil
}

func lookupSpec(specs []PartitionSpec, name string) (PartitionSpec, bool) {
	for _, s := range specs {
		if s.Name == name {
			return s, true
		}
	}
	return PartitionSpec{}, false
}
