package place

import (
	"strings"
	"testing"

	"zoomie/internal/fpga"
	"zoomie/internal/synth"
	"zoomie/internal/workloads"
)

func socNetlist(t *testing.T, cores int) *synth.ModuleNetlist {
	t.Helper()
	n, err := synth.Synthesize(workloads.ManycoreSoC(cores))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPlaceWholeDesignStatic(t *testing.T) {
	net := socNetlist(t, 32)
	pl, err := Place(net, fpga.NewU200(), nil)
	if err != nil {
		t.Fatal(err)
	}
	placed := 0
	net.Flatten(func(c synth.FlatCell) {
		if _, ok := pl.CellTile[c.Name]; ok {
			placed++
		}
	})
	if placed != net.TotalCellCount {
		t.Errorf("placed %d of %d cells", placed, net.TotalCellCount)
	}
	if len(pl.Regions[StaticPartition]) == 0 {
		t.Error("no static regions")
	}
}

func TestPlaceWithPartition(t *testing.T) {
	net := socNetlist(t, 32)
	specs := []PartitionSpec{{Name: "mut", Paths: []string{workloads.CorePath(0, 0)}}}
	pl, err := Place(net, fpga.NewU200(), specs)
	if err != nil {
		t.Fatal(err)
	}
	regions := pl.Regions["mut"]
	if len(regions) != 1 {
		t.Fatalf("mut has %d regions, want 1", len(regions))
	}
	// All debug partitions live on one SLR; all partition cells must be
	// inside the region.
	r := regions[0]
	net.Flatten(func(c synth.FlatCell) {
		if pl.PartitionOf[c.Name] != "mut" {
			return
		}
		pos := pl.CellTile[c.Name]
		if !r.Contains(pos.SLR, pos.Row, pos.Col) {
			t.Errorf("mut cell %q placed at %+v outside region %+v", c.Name, pos, r)
		}
		if !strings.HasPrefix(c.Name, "tile0.core0.") {
			t.Errorf("cell %q wrongly assigned to mut", c.Name)
		}
	})
	if pl.DebugSLR("mut") != r.SLR {
		t.Error("DebugSLR mismatch")
	}
	if pl.DebugSLR("nosuch") != -1 {
		t.Error("DebugSLR for missing partition should be -1")
	}
}

func TestMultiplePartitionsShareOneSLR(t *testing.T) {
	net := socNetlist(t, 32)
	specs := []PartitionSpec{
		{Name: "a", Paths: []string{workloads.CorePath(0, 0)}},
		{Name: "b", Paths: []string{workloads.CorePath(0, 1)}},
	}
	pl, err := Place(net, fpga.NewU200(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if pl.DebugSLR("a") != pl.DebugSLR("b") {
		t.Errorf("debug partitions on different SLRs: %d vs %d", pl.DebugSLR("a"), pl.DebugSLR("b"))
	}
	if pl.Regions["a"][0].Overlaps(pl.Regions["b"][0]) {
		t.Error("partition regions overlap")
	}
}

func TestOverProvisionGrowsRegion(t *testing.T) {
	net := socNetlist(t, 32)
	small, err := Place(net, fpga.NewU200(), []PartitionSpec{
		{Name: "mut", Paths: []string{workloads.ClusterPath(0)}, OverProvision: 0.15}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Place(net, fpga.NewU200(), []PartitionSpec{
		{Name: "mut", Paths: []string{workloads.ClusterPath(0)}, OverProvision: 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	if big.Regions["mut"][0].Tiles() <= small.Regions["mut"][0].Tiles() {
		t.Errorf("overprovision 2.5 region (%d tiles) not larger than 0.15 (%d tiles)",
			big.Regions["mut"][0].Tiles(), small.Regions["mut"][0].Tiles())
	}
	if big.Utilization["mut"] >= small.Utilization["mut"] {
		t.Error("larger region should have lower utilization")
	}
}

func TestStateMapCoversAllState(t *testing.T) {
	net := socNetlist(t, 16)
	pl, err := Place(net, fpga.NewU200(), nil)
	if err != nil {
		t.Fatal(err)
	}
	net.Flatten(func(c synth.FlatCell) {
		if !c.IsState {
			return
		}
		if c.MemWidth > 0 {
			if _, ok := pl.StateMap.Mem(c.Name); !ok {
				t.Errorf("memory %q missing from state map", c.Name)
			}
			return
		}
		if _, ok := pl.StateMap.Reg(c.Name); !ok {
			t.Errorf("register %q missing from state map", c.Name)
		}
	})
}

func TestPartitionStateInsideRegionFrames(t *testing.T) {
	net := socNetlist(t, 32)
	specs := []PartitionSpec{{Name: "mut", Paths: []string{workloads.CorePath(0, 0)}}}
	pl, err := Place(net, fpga.NewU200(), specs)
	if err != nil {
		t.Fatal(err)
	}
	r := pl.Regions["mut"][0]
	lo, hi := r.FrameRange(fpga.NewU200())
	for _, reg := range pl.StateMap.Regs {
		if !strings.HasPrefix(reg.Name, "tile0.core0.") {
			continue
		}
		if reg.Addr.SLR != r.SLR || reg.Addr.Frame < lo || reg.Addr.Frame >= hi {
			t.Errorf("mut register %q placed at frame %d outside region [%d,%d)",
				reg.Name, reg.Addr.Frame, lo, hi)
		}
	}
}

func TestValidateSpecs(t *testing.T) {
	net := socNetlist(t, 16)
	dev := fpga.NewU200()
	cases := []struct {
		name  string
		specs []PartitionSpec
	}{
		{"empty name", []PartitionSpec{{Name: "", Paths: []string{"tile0"}}}},
		{"static reserved", []PartitionSpec{{Name: "static", Paths: []string{"tile0"}}}},
		{"dup name", []PartitionSpec{
			{Name: "a", Paths: []string{"tile0"}},
			{Name: "a", Paths: []string{"tile1"}}}},
		{"dup path", []PartitionSpec{
			{Name: "a", Paths: []string{"tile0"}},
			{Name: "b", Paths: []string{"tile0"}}}},
		{"no paths", []PartitionSpec{{Name: "a"}}},
	}
	for _, c := range cases {
		if _, err := Place(net, dev, c.specs); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDesignTooBigRejected(t *testing.T) {
	// 12000 cores exceed the U200.
	net := socNetlist(t, 12000)
	if _, err := Place(net, fpga.NewU200(), nil); err == nil {
		t.Error("oversized design accepted")
	}
}

func TestReplaceKeepsStaticIntact(t *testing.T) {
	net := socNetlist(t, 32)
	specs := []PartitionSpec{{Name: "mut", Paths: []string{workloads.CorePath(0, 0)}}}
	dev := fpga.NewU200()
	pl, err := Place(net, dev, specs)
	if err != nil {
		t.Fatal(err)
	}
	pl2, work, err := Replace(pl, net, specs, "mut")
	if err != nil {
		t.Fatal(err)
	}
	if work == 0 {
		t.Error("replace did no work")
	}
	net.Flatten(func(c synth.FlatCell) {
		if pl.PartitionOf[c.Name] == "mut" {
			return
		}
		if pl2.CellTile[c.Name] != pl.CellTile[c.Name] {
			t.Errorf("static cell %q moved during replace", c.Name)
		}
		if c.IsState && c.MemWidth == 0 {
			a, _ := pl.StateMap.Reg(c.Name)
			b, _ := pl2.StateMap.Reg(c.Name)
			if a != b {
				t.Errorf("static register %q relocated: %+v -> %+v", c.Name, a, b)
			}
		}
	})
}

func TestReplaceRejectsUnknownPartition(t *testing.T) {
	net := socNetlist(t, 16)
	specs := []PartitionSpec{{Name: "mut", Paths: []string{workloads.CorePath(0, 0)}}}
	pl, err := Place(net, fpga.NewU200(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Replace(pl, net, specs, "other"); err == nil {
		t.Error("unknown partition accepted")
	}
}

func TestReplaceRejectsChangesOutsidePartition(t *testing.T) {
	specs := []PartitionSpec{{Name: "mut", Paths: []string{workloads.CorePath(0, 0)}}}
	net := socNetlist(t, 16)
	pl, err := Place(net, fpga.NewU200(), specs)
	if err != nil {
		t.Fatal(err)
	}
	// A netlist with an extra cluster has new cells outside "mut".
	bigger := socNetlist(t, 24)
	if _, _, err := Replace(pl, bigger, specs, "mut"); err == nil {
		t.Error("out-of-partition change accepted")
	}
}
