package place

import (
	"strings"
	"testing"

	"zoomie/internal/fpga"
)

// testDevice builds a one-SLR device with 10×10 tiles and a known
// capacity, so per-row capacity is exactly Capacity/10 and the ER math
// ER = resource × (1 + c) can be pinned against hand-computed values.
func testDevice(cap fpga.ResourceVec) *fpga.Device {
	return &fpga.Device{
		Name: "test-1slr",
		SLRs: []*fpga.SLR{{
			Index: 0, Rows: 10, Cols: 10, Frames: 100, Capacity: cap,
		}},
	}
}

func TestRowsForERMath(t *testing.T) {
	dev := testDevice(fpga.ResourceVec{fpga.LUT: 1000})
	cases := []struct {
		usage int
		c     float64
		rows  int
	}{
		{usage: 300, c: 0.30, rows: 4},  // ER = 390 -> ceil(390/100)
		{usage: 200, c: 0.50, rows: 3},  // ER = 300, exact row boundary
		{usage: 201, c: 0.50, rows: 4},  // ER = 301, one over the boundary
		{usage: 76, c: 0.30, rows: 1},   // ER = 98, fits the minimum row
		{usage: 700, c: 0.30, rows: 10}, // ER = 910, whole SLR
	}
	for _, tc := range cases {
		rows, _, err := rowsFor(dev, 0, fpga.ResourceVec{fpga.LUT: tc.usage}, tc.c)
		if err != nil {
			t.Fatalf("usage=%d c=%v: %v", tc.usage, tc.c, err)
		}
		if rows != tc.rows {
			t.Errorf("usage=%d c=%v: rows=%d want %d", tc.usage, tc.c, rows, tc.rows)
		}
	}
}

func TestRowsForOverflow(t *testing.T) {
	dev := testDevice(fpga.ResourceVec{fpga.LUT: 1000})
	// ER = int(800*1.3) = 1040 -> 11 rows > 10 available.
	_, _, err := rowsFor(dev, 0, fpga.ResourceVec{fpga.LUT: 800}, 0.30)
	if err == nil || !strings.Contains(err.Error(), "rows") {
		t.Fatalf("want rows-overflow error, got %v", err)
	}
}

func TestRowsForEmptyPartition(t *testing.T) {
	dev := testDevice(fpga.ResourceVec{fpga.LUT: 1000})
	rows, util, err := rowsFor(dev, 0, fpga.ResourceVec{}, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1 {
		t.Errorf("empty partition reserves %d rows, want the 1-row minimum", rows)
	}
	if util != 0 {
		t.Errorf("empty partition utilization = %v, want 0", util)
	}
}

func TestRowsForMissingResource(t *testing.T) {
	// A device with zero BRAM cannot host BRAM usage at any size.
	dev := testDevice(fpga.ResourceVec{fpga.LUT: 1000})
	_, _, err := rowsFor(dev, 0, fpga.ResourceVec{fpga.BRAM: 1}, 0.30)
	if err == nil || !strings.Contains(err.Error(), "BRAM") {
		t.Fatalf("want missing-BRAM error, got %v", err)
	}
}

func TestRowsForWorstResourceWins(t *testing.T) {
	// LUT needs 2 rows, FF needs 7: the region must satisfy both.
	dev := testDevice(fpga.ResourceVec{fpga.LUT: 1000, fpga.FF: 1000})
	usage := fpga.ResourceVec{fpga.LUT: 150, fpga.FF: 500}
	rows, _, err := rowsFor(dev, 0, usage, 0.30) // ER: 195 -> 2 rows, 650 -> 7 rows
	if err != nil {
		t.Fatal(err)
	}
	if rows != 7 {
		t.Errorf("rows=%d want 7 (worst resource governs)", rows)
	}
}

func TestOverProvisionCoefficient(t *testing.T) {
	if got := (PartitionSpec{}).c(); got != DefaultOverProvision {
		t.Errorf("zero coefficient should default to %v, got %v", DefaultOverProvision, got)
	}
	if got := (PartitionSpec{OverProvision: 0.5}).c(); got != 0.5 {
		t.Errorf("explicit coefficient overridden: %v", got)
	}
}

func TestChooseDebugSLRPrefersSlack(t *testing.T) {
	// Two SLRs; the second has twice the capacity, so after demand is
	// accounted the bigger one has more slack and must win.
	dev := &fpga.Device{
		Name: "test-2slr",
		SLRs: []*fpga.SLR{
			{Index: 0, Rows: 10, Cols: 10, Frames: 100, Capacity: fpga.ResourceVec{fpga.LUT: 500}},
			{Index: 1, Rows: 10, Cols: 10, Frames: 100, Capacity: fpga.ResourceVec{fpga.LUT: 1000}},
		},
	}
	specs := []PartitionSpec{{Name: "p", Paths: []string{"x"}}}
	usage := map[string]fpga.ResourceVec{"p": {fpga.LUT: 300}}
	slr, err := chooseDebugSLR(dev, specs, usage)
	if err != nil {
		t.Fatal(err)
	}
	if slr != 1 {
		t.Errorf("chose SLR %d, want 1 (more slack)", slr)
	}
}

func TestChooseDebugSLRNoFit(t *testing.T) {
	dev := testDevice(fpga.ResourceVec{fpga.LUT: 100})
	specs := []PartitionSpec{{Name: "p", Paths: []string{"x"}}}
	usage := map[string]fpga.ResourceVec{"p": {fpga.LUT: 200}}
	if _, err := chooseDebugSLR(dev, specs, usage); err == nil {
		t.Fatal("demand exceeding every SLR must be rejected")
	}
}
