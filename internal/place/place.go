// Package place assigns synthesized cells to tiles of an FPGA device,
// honoring VTI's partition discipline: every iterated (debuggable)
// partition gets its own reserved rectangular region, sized by the
// over-provisioning formula ER = resource × (1 + c) and constrained to a
// single SLR so the debugged logic never crosses a chiplet boundary
// (paper §3.5). The static remainder of the design fills the rest of the
// device. Placement also produces the StateMap — the logic-location
// metadata that lets readback data be matched to RTL names.
package place

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"zoomie/internal/fpga"
	"zoomie/internal/synth"
)

// DefaultOverProvision is the default over-provisioning coefficient c.
const DefaultOverProvision = 0.30

// StaticPartition is the reserved name for all logic not assigned to an
// iterated partition.
const StaticPartition = "static"

// PartitionSpec names one iterated partition: the designer's declaration
// of which instance subtrees they intend to recompile during debugging.
type PartitionSpec struct {
	Name  string
	Paths []string // instance paths included in the partition
	// OverProvision is the coefficient c; 0 means DefaultOverProvision.
	OverProvision float64
}

func (p PartitionSpec) c() float64 {
	if p.OverProvision == 0 {
		return DefaultOverProvision
	}
	return p.OverProvision
}

// TilePos locates a cell on the device.
type TilePos struct {
	SLR, Row, Col int
}

// Placement is the result of placing a design.
type Placement struct {
	Device *fpga.Device

	// Regions maps each partition name to its reserved regions. Iterated
	// partitions have exactly one region; the static partition may have
	// one region per SLR.
	Regions map[string][]fpga.Region

	// CellTile locates every flat cell.
	CellTile map[string]TilePos

	// PartitionOf maps flat cell names to their partition.
	PartitionOf map[string]string

	// Usage is per-partition resource usage (without over-provisioning).
	Usage map[string]fpga.ResourceVec

	// Utilization is the per-partition ratio of usage to reserved region
	// capacity, per resource — the congestion input to the timing model.
	Utilization map[string]float64

	// StateMap locates every register and memory in the frame plane.
	StateMap *fpga.StateMap

	// WorkUnits counts placement effort (cells placed, swaps attempted).
	WorkUnits int64
}

// DebugSLR returns the SLR hosting the named iterated partition, or -1.
func (p *Placement) DebugSLR(partition string) int {
	rs := p.Regions[partition]
	if len(rs) == 0 {
		return -1
	}
	return rs[0].SLR
}

// Hook observes — and may mutate — a finished placement before it is
// returned. Hooks model legalization bugs for the toolchain self-checker:
// swapped state-map nets, shifted bit offsets, dropped map entries, cells
// leaked across partition boundaries. A hook that needs to no-op (its
// victim absent from this design) simply returns without touching p.
type Hook func(p *Placement)

// Place places the netlist onto the device. Iterated partitions are
// placed first, all on one SLR; static logic fills remaining space on all
// SLRs. Passing no specs places the whole design as static. Trailing
// hooks, if any, run in order on the finished placement.
func Place(net *synth.ModuleNetlist, dev *fpga.Device, specs []PartitionSpec, hooks ...Hook) (*Placement, error) {
	if err := validateSpecs(specs); err != nil {
		return nil, err
	}
	p := &Placement{
		Device:      dev,
		Regions:     make(map[string][]fpga.Region),
		CellTile:    make(map[string]TilePos),
		PartitionOf: make(map[string]string),
		Usage:       make(map[string]fpga.ResourceVec),
		Utilization: make(map[string]float64),
		StateMap:    fpga.NewStateMap(),
	}

	// Pass 1: bucket cells by partition and accumulate usage.
	buckets := make(map[string][]synth.FlatCell)
	net.Flatten(func(c synth.FlatCell) {
		part := partitionFor(c, specs)
		buckets[part] = append(buckets[part], c)
		u := p.Usage[part]
		u.Add(c.Res)
		p.Usage[part] = u
	})

	// Pass 2: reserve regions. Iterated partitions share one SLR, chosen
	// as the SLR with the most tiles free after fitting all of them.
	nextRow := make([]int, len(dev.SLRs))
	var iterated []string
	for _, s := range specs {
		iterated = append(iterated, s.Name)
	}
	sort.Strings(iterated)

	if len(specs) > 0 {
		debugSLR, err := chooseDebugSLR(dev, specs, p.Usage)
		if err != nil {
			return nil, err
		}
		for _, name := range iterated {
			spec := specByName(specs, name)
			rows, util, err := rowsFor(dev, debugSLR, p.Usage[name], spec.c())
			if err != nil {
				return nil, fmt.Errorf("place: partition %q: %w", name, err)
			}
			slr := dev.SLRs[debugSLR]
			if nextRow[debugSLR]+rows > slr.Rows {
				return nil, fmt.Errorf("place: partition %q does not fit on SLR %d", name, debugSLR)
			}
			region := fpga.Region{
				Name: name, SLR: debugSLR,
				Row: nextRow[debugSLR], Col: 0,
				Rows: rows, Cols: slr.Cols,
			}
			nextRow[debugSLR] += rows
			p.Regions[name] = []fpga.Region{region}
			p.Utilization[name] = util
		}
	}

	// Static regions: all remaining rows on every SLR.
	var staticRegions []fpga.Region
	var staticCap fpga.ResourceVec
	for i, slr := range dev.SLRs {
		if nextRow[i] >= slr.Rows {
			continue
		}
		r := fpga.Region{
			Name: StaticPartition, SLR: i,
			Row: nextRow[i], Col: 0,
			Rows: slr.Rows - nextRow[i], Cols: slr.Cols,
		}
		staticRegions = append(staticRegions, r)
		staticCap.Add(r.Capacity(dev))
	}
	if u := p.Usage[StaticPartition]; !u.Fits(staticCap) {
		return nil, fmt.Errorf("place: static logic %v exceeds remaining capacity %v", u, staticCap)
	}
	p.Regions[StaticPartition] = staticRegions
	p.Utilization[StaticPartition] = utilization(p.Usage[StaticPartition], staticCap)

	// Pass 3: assign cells to tiles and state to frames, region by region.
	names := append([]string{}, iterated...)
	names = append(names, StaticPartition)
	for _, name := range names {
		if err := p.placePartition(name, buckets[name]); err != nil {
			return nil, err
		}
	}
	for _, h := range hooks {
		h(p)
	}
	return p, nil
}

// SwapRegAddrs exchanges the frame addresses of two placed registers in
// the state map, keeping each register's width — the shape of a
// legalization pass swapping two nets. It refuses (returning false) if
// either register is unplaced or a swapped register would span its frame.
func (p *Placement) SwapRegAddrs(a, b string) bool {
	sm := p.StateMap
	ia, ib := -1, -1
	for i := range sm.Regs {
		switch sm.Regs[i].Name {
		case a:
			ia = i
		case b:
			ib = i
		}
	}
	if ia < 0 || ib < 0 || ia == ib {
		return false
	}
	ra, rb := sm.Regs[ia], sm.Regs[ib]
	if ra.Addr == rb.Addr ||
		rb.Addr.Bit+ra.Width > fpga.FrameBits ||
		ra.Addr.Bit+rb.Width > fpga.FrameBits {
		return false
	}
	sm.Regs[ia].Addr, sm.Regs[ib].Addr = rb.Addr, ra.Addr
	return true
}

// DropReg removes one register from the state map, rebuilding it through
// the exported fpga API (the map's name index is private to fpga).
// Reports whether the register was present.
func (p *Placement) DropReg(name string) bool {
	old := p.StateMap
	found := false
	sm := fpga.NewStateMap()
	for _, r := range old.Regs {
		if r.Name == name {
			found = true
			continue
		}
		if err := sm.AddReg(r); err != nil {
			return false
		}
	}
	for _, m := range old.Mems {
		if err := sm.AddMem(m); err != nil {
			return false
		}
	}
	if found {
		p.StateMap = sm
	}
	return found
}

func validateSpecs(specs []PartitionSpec) error {
	seenName := make(map[string]bool)
	seenPath := make(map[string]bool)
	for _, s := range specs {
		if s.Name == "" || s.Name == StaticPartition {
			return fmt.Errorf("place: invalid partition name %q", s.Name)
		}
		if seenName[s.Name] {
			return fmt.Errorf("place: duplicate partition %q", s.Name)
		}
		seenName[s.Name] = true
		if len(s.Paths) == 0 {
			return fmt.Errorf("place: partition %q has no instance paths", s.Name)
		}
		for _, path := range s.Paths {
			if seenPath[path] {
				return fmt.Errorf("place: instance path %q in two partitions", path)
			}
			seenPath[path] = true
		}
	}
	return nil
}

func specByName(specs []PartitionSpec, name string) PartitionSpec {
	for _, s := range specs {
		if s.Name == name {
			return s
		}
	}
	return PartitionSpec{}
}

// partitionFor assigns a cell to the partition whose path prefix matches.
func partitionFor(c synth.FlatCell, specs []PartitionSpec) string {
	for _, s := range specs {
		for _, path := range s.Paths {
			if c.Path == path || strings.HasPrefix(c.Path, path+".") {
				return s.Name
			}
		}
	}
	return StaticPartition
}

// chooseDebugSLR picks the SLR hosting all iterated partitions: the one
// whose capacity covers their combined over-provisioned demand with the
// most slack. Debugged modules deliberately share one chiplet (§3.5).
func chooseDebugSLR(dev *fpga.Device, specs []PartitionSpec, usage map[string]fpga.ResourceVec) (int, error) {
	var demand fpga.ResourceVec
	for _, s := range specs {
		u := usage[s.Name]
		for i := range u {
			u[i] = int(float64(u[i]) * (1 + s.c()))
		}
		demand.Add(u)
	}
	best, bestSlack := -1, -1.0
	for i, slr := range dev.SLRs {
		if !demand.Fits(slr.Capacity) {
			continue
		}
		slack := 1 - utilization(demand, slr.Capacity)
		if slack > bestSlack {
			best, bestSlack = i, slack
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("place: no SLR can host the debug partitions (demand %v)", demand)
	}
	return best, nil
}

// rowsFor sizes a partition's region: enough full-width rows that every
// resource type satisfies Atotal >= max_resource ER (§3.5).
func rowsFor(dev *fpga.Device, slrIdx int, usage fpga.ResourceVec, c float64) (rows int, util float64, err error) {
	slr := dev.SLRs[slrIdx]
	perRow := fpga.Region{SLR: slrIdx, Rows: 1, Cols: slr.Cols}.Capacity(dev)
	rows = 1
	for _, res := range fpga.Resources() {
		if usage[res] == 0 {
			continue
		}
		er := int(float64(usage[res]) * (1 + c))
		if perRow[res] == 0 {
			return 0, 0, fmt.Errorf("SLR %d has no %s capacity", slrIdx, res)
		}
		need := (er + perRow[res] - 1) / perRow[res]
		if need > rows {
			rows = need
		}
	}
	if rows > slr.Rows {
		return 0, 0, fmt.Errorf("needs %d rows, SLR has %d", rows, slr.Rows)
	}
	region := fpga.Region{SLR: slrIdx, Rows: rows, Cols: slr.Cols}
	return rows, utilization(usage, region.Capacity(dev)), nil
}

// utilization returns the max per-resource usage/capacity ratio.
func utilization(usage, capacity fpga.ResourceVec) float64 {
	worst := 0.0
	for i := range usage {
		if capacity[i] == 0 {
			continue
		}
		r := float64(usage[i]) / float64(capacity[i])
		if r > worst {
			worst = r
		}
	}
	return worst
}

// placePartition spreads cells over the partition's region tiles
// round-robin, allocates frame space for its state, and runs a bounded
// deterministic refinement pass for small partitions.
func (p *Placement) placePartition(name string, cells []synth.FlatCell) error {
	regions := p.Regions[name]
	if len(regions) == 0 {
		if len(cells) == 0 {
			return nil
		}
		return fmt.Errorf("place: partition %q has cells but no region", name)
	}
	// Enumerate tiles across all of the partition's regions.
	var tiles []TilePos
	for _, r := range regions {
		for row := r.Row; row < r.Row+r.Rows; row++ {
			for col := r.Col; col < r.Col+r.Cols; col++ {
				tiles = append(tiles, TilePos{SLR: r.SLR, Row: row, Col: col})
			}
		}
	}
	// Frame allocators, one per region.
	allocs := make([]*fpga.FrameAllocator, len(regions))
	for i, r := range regions {
		lo, hi := r.FrameRange(p.Device)
		allocs[i] = fpga.NewFrameAllocator(r.SLR, lo, hi)
	}
	allocBits := func(width int) (fpga.BitAddr, error) {
		var lastErr error
		for _, a := range allocs {
			addr, err := a.AllocBits(width)
			if err == nil {
				return addr, nil
			}
			lastErr = err
		}
		return fpga.BitAddr{}, lastErr
	}
	allocFrames := func(n int) (int, int, error) {
		var lastErr error
		for i, a := range allocs {
			start, err := a.AllocFrames(n)
			if err == nil {
				return regions[i].SLR, start, nil
			}
			lastErr = err
		}
		return 0, 0, lastErr
	}

	// Dense monotonic packing: cells fill only as many tiles as their
	// resources demand, in netlist order, so neighbouring cells land on
	// the same or adjacent tiles — the locality a wirelength-driven placer
	// converges to.
	tilesNeeded := 1
	if len(regions) > 0 {
		perTile := regions[0].Capacity(p.Device)
		for i := range perTile {
			perTile[i] /= regions[0].Tiles()
		}
		usage := p.Usage[name]
		for _, res := range fpga.Resources() {
			if perTile[res] == 0 || usage[res] == 0 {
				continue
			}
			if need := (usage[res] + perTile[res] - 1) / perTile[res]; need > tilesNeeded {
				tilesNeeded = need
			}
		}
		if tilesNeeded > len(tiles) {
			tilesNeeded = len(tiles)
		}
	}
	density := (len(cells) + tilesNeeded - 1) / tilesNeeded
	if density < 1 {
		density = 1
	}
	for i, c := range cells {
		ti := i / density
		if ti >= len(tiles) {
			ti = len(tiles) - 1
		}
		pos := tiles[ti]
		p.CellTile[c.Name] = pos
		p.PartitionOf[c.Name] = name
		p.WorkUnits++

		if !c.IsState {
			continue
		}
		if w := c.Res[fpga.FF]; w > 0 && c.Res[fpga.BRAM] == 0 && c.Res[fpga.LUTRAM] == 0 {
			addr, err := allocBits(w)
			if err != nil {
				return fmt.Errorf("place: register %q: %w", c.Name, err)
			}
			if err := p.StateMap.AddReg(fpga.RegLoc{Name: c.Name, Width: w, Addr: addr}); err != nil {
				return err
			}
			continue
		}
		if c.MemWidth > 0 {
			loc := fpga.MemLoc{Name: c.Name, Width: c.MemWidth, Depth: c.MemDepth}
			slr, start, err := allocFrames(loc.FrameCount())
			if err != nil {
				return fmt.Errorf("place: memory %q: %w", c.Name, err)
			}
			loc.SLR, loc.StartFrame = slr, start
			if err := p.StateMap.AddMem(loc); err != nil {
				return err
			}
		}
	}

	// Deterministic HPWL refinement for modest partitions: swap pairs and
	// keep improvements. This is annealing's inner move at temperature
	// zero, bounded so big static partitions stay cheap.
	if len(cells) > 1 && len(cells) <= 2000 {
		p.refine(cells)
	}
	return nil
}

// refine performs bounded greedy swap refinement on a partition's cells.
func (p *Placement) refine(cells []synth.FlatCell) {
	rng := rand.New(rand.NewSource(1))
	cost := func(c synth.FlatCell) int64 {
		pos := p.CellTile[c.Name]
		var sum int64
		for _, f := range c.Fanin {
			if fp, ok := p.CellTile[f]; ok {
				sum += int64(abs(pos.Row-fp.Row) + abs(pos.Col-fp.Col))
			}
		}
		return sum
	}
	passes := 2
	for pass := 0; pass < passes; pass++ {
		for i := 0; i < len(cells); i++ {
			j := rng.Intn(len(cells))
			if i == j {
				continue
			}
			a, b := cells[i], cells[j]
			before := cost(a) + cost(b)
			p.CellTile[a.Name], p.CellTile[b.Name] = p.CellTile[b.Name], p.CellTile[a.Name]
			after := cost(a) + cost(b)
			if after >= before {
				p.CellTile[a.Name], p.CellTile[b.Name] = p.CellTile[b.Name], p.CellTile[a.Name]
			}
			p.WorkUnits++
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
