// Package core implements Zoomie's primary contribution: the Debug
// Controller (§3). It is generated RTL that wraps the module under test:
//
//   - a trigger unit composing value breakpoints, a 64-bit cycle
//     breakpoint, assertion breakpoints and host pause requests through
//     the And/Or mask network of Algorithm 1;
//   - a glitch-free clock enable that pauses the design in the exact
//     cycle a trigger fires and holds it until the host resumes;
//   - formally characterized pause buffers that make ready/valid
//     interfaces safe to pause (Figure 3);
//   - an instrumentation wrapper that stitches all of it around an
//     arbitrary user design.
//
// Everything the host reconfigures at run time — reference values, masks,
// step counts, assertion enables, the pause request — is ordinary register
// state, written through configuration frames exactly like any other
// design state (§3.4: "state manipulation capabilities are used to
// reconfigure the trigger selection on the fly").
package core

import (
	"fmt"

	"zoomie/internal/rtl"
)

// DebugClock is the clock domain of the Debug Controller itself. It is
// never gated: the controller must keep running while the MUT is paused.
const DebugClock = "clk_zdbg"

// Prefix is the instance name of the controller in instrumented designs;
// all controller state lives under "zdbg." in the flat namespace.
const Prefix = "zdbg"

// WatchSpec selects one signal of the user design as a value-breakpoint
// input.
type WatchSpec struct {
	// Signal is the name of an output port of the user top module.
	Signal string
	Width  int
}

// TriggerConfig sizes a trigger unit.
type TriggerConfig struct {
	Watches    []WatchSpec
	NumAsserts int
}

// Controller register names (relative to the controller module). The host
// debugger addresses them as Prefix+"."+name in the flat design.
const (
	RegPauseReq = "pause_req"
	RegPaused   = "paused"
	RegAndSel   = "and_sel"
	RegOrSel    = "or_sel"
	RegStepCnt  = "step_cnt"
	RegStepArm  = "step_arm"
	RegCycles   = "cycle_count"
)

// RegRefVal returns the name of watch i's reference-value register.
func RegRefVal(i int) string { return fmt.Sprintf("refval%d", i) }

// RegAndMask returns the name of watch i's And-mask register.
func RegAndMask(i int) string { return fmt.Sprintf("and_mask%d", i) }

// RegOrMask returns the name of watch i's Or-mask register.
func RegOrMask(i int) string { return fmt.Sprintf("or_mask%d", i) }

// RegAssertEn returns the name of assertion input i's enable register.
func RegAssertEn(i int) string { return fmt.Sprintf("assert_en%d", i) }

// TriggerModule builds the Debug Controller RTL. Ports:
//
//	inputs:  watch<i> (per watch), assert<i> (per assertion)
//	outputs: clk_en (the MUT clock enable), paused_out, stop_out
//
// The stop condition follows Algorithm 1 with the obvious reading of its
// masks: a signal participates in the AND-condition when its And-mask is
// set (unmasked signals do not block it), and in the OR-condition when
// its Or-mask is set. And_sel/Or_sel arm the two composite conditions:
//
//	and_stop = and_sel ∧ (∃ mask) ∧ ∀i (match_i ∨ ¬and_mask_i)
//	or_stop  = or_sel ∧ ∃i (match_i ∧ or_mask_i)
//	stop     = and_stop ∨ or_stop ∨ step_hit ∨ assert_hit ∨ pause_req
//
// Pausing is timing precise: clk_en = ¬(paused ∨ stop), so the MUT's
// clock edge in the very cycle a trigger fires is suppressed and the
// design state of that cycle is preserved.
func TriggerModule(cfg TriggerConfig) *rtl.Module {
	m := rtl.NewModule("zoomie_trigger")

	clkEn := m.Output("clk_en", 1)
	pausedOut := m.Output("paused_out", 1)
	stopOut := m.Output("stop_out", 1)

	pauseReq := m.Reg(RegPauseReq, 1, DebugClock, 0)
	m.SetNext(pauseReq, rtl.S(pauseReq)) // host-written only
	paused := m.Reg(RegPaused, 1, DebugClock, 0)
	andSel := m.Reg(RegAndSel, 1, DebugClock, 0)
	m.SetNext(andSel, rtl.S(andSel))
	orSel := m.Reg(RegOrSel, 1, DebugClock, 0)
	m.SetNext(orSel, rtl.S(orSel))

	// Per-watch mask network (Algorithm 1). The whole composition is one
	// logic cone: intermediate terms stay expressions rather than
	// separate wires, so the trigger adds a single LUT-tree level
	// structure to the clock-enable path instead of a chain of cells —
	// this is what keeps Zoomie off the critical path at 250 MHz (§5.7).
	andStop := rtl.C(1, 1)
	anyAndMask := rtl.C(0, 1)
	orStop := rtl.C(0, 1)
	for i, w := range cfg.Watches {
		if w.Width <= 0 || w.Width > rtl.MaxWidth {
			panic(fmt.Sprintf("core: watch %d has invalid width %d", i, w.Width))
		}
		sig := m.Input(fmt.Sprintf("watch%d", i), w.Width)
		ref := m.Reg(RegRefVal(i), w.Width, DebugClock, 0)
		m.SetNext(ref, rtl.S(ref))
		am := m.Reg(RegAndMask(i), 1, DebugClock, 0)
		m.SetNext(am, rtl.S(am))
		om := m.Reg(RegOrMask(i), 1, DebugClock, 0)
		m.SetNext(om, rtl.S(om))

		match := rtl.Eq(rtl.S(sig), rtl.S(ref))
		andStop = rtl.And(andStop, rtl.Or(match, rtl.Not(rtl.S(am))))
		anyAndMask = rtl.Or(anyAndMask, rtl.S(am))
		orStop = rtl.Or(orStop, rtl.And(match, rtl.S(om)))
	}
	andHit := rtl.And(rtl.S(andSel), rtl.And(anyAndMask, andStop))
	orHit := rtl.And(rtl.S(orSel), orStop)

	// Assertion breakpoints with per-assertion dynamic enables.
	assertHit := rtl.C(0, 1)
	for i := 0; i < cfg.NumAsserts; i++ {
		in := m.Input(fmt.Sprintf("assert%d", i), 1)
		en := m.Reg(RegAssertEn(i), 1, DebugClock, 1)
		m.SetNext(en, rtl.S(en))
		assertHit = rtl.Or(assertHit, rtl.And(rtl.S(in), rtl.S(en)))
	}

	// Cycle breakpoint: run exactly step_cnt MUT cycles, then stop.
	stepCnt := m.Reg(RegStepCnt, 64, DebugClock, 0)
	stepArm := m.Reg(RegStepArm, 1, DebugClock, 0)
	m.SetNext(stepArm, rtl.S(stepArm))
	// The counter compare is registered (step_last): the 64-bit equality
	// never sits on the combinational clock-enable path. step_last latches
	// during the final counted cycle (counter at 1 and executing), so the
	// very next cycle is gated — still exactly N executed cycles.
	stepLast := m.Reg("step_last", 1, DebugClock, 0)
	stepHit := rtl.S(stepLast)

	stopExpr := rtl.Or(rtl.S(pauseReq),
		rtl.Or(rtl.Or(andHit, orHit), rtl.Or(assertHit, stepHit)))
	stop := m.Wire("stop", 1)
	m.Connect(stop, stopExpr)

	// Stepping off a breakpoint: for exactly one cycle after the host
	// clears the paused flag, level-triggered stop sources are ignored so
	// the design can leave the triggering state — the same thing gdb does
	// when continuing from a breakpoint.
	prevPaused := m.Reg("prev_paused", 1, DebugClock, 0)
	m.SetNext(prevPaused, rtl.S(paused))
	ignoreStop := m.Wire("ignore_stop", 1)
	m.Connect(ignoreStop, rtl.And(rtl.S(prevPaused), rtl.Not(rtl.S(paused))))

	// The enable expression is replicated into the counters' clock-enable
	// cones below (standard high-fanout replication), so the wire exists
	// for the gate output without adding a cell hop to the counter paths.
	enExpr := rtl.Not(rtl.Or(rtl.S(paused),
		rtl.And(stopExpr, rtl.Not(rtl.S(ignoreStop)))))
	en := m.Wire("clk_en_int", 1)
	m.Connect(en, enExpr)

	// step_cnt decrements once per executed MUT cycle; the final counted
	// cycle (counter at 1, executing) latches step_last.
	m.SetNext(stepCnt, rtl.Sub(rtl.S(stepCnt), rtl.C(1, 64)))
	m.SetEnable(stepCnt, rtl.And(enExpr,
		rtl.And(rtl.S(stepArm), rtl.Ne(rtl.S(stepCnt), rtl.C(0, 64)))))
	// Not sticky: once the pause latches, the flag self-clears (en = 0).
	m.SetNext(stepLast,
		rtl.And(enExpr, rtl.And(rtl.S(stepArm), rtl.Eq(rtl.S(stepCnt), rtl.C(1, 64)))))

	// The paused flag latches any stop and holds until the host clears it;
	// the stop-off-breakpoint grace cycle does not re-latch.
	m.SetNext(paused, rtl.Or(rtl.S(paused),
		rtl.And(rtl.S(stop), rtl.Not(rtl.S(ignoreStop)))))

	// A free-running count of executed MUT cycles, for the host's
	// "how far did the design run" bookkeeping and periodic snapshots.
	cycles := m.Reg(RegCycles, 64, DebugClock, 0)
	m.SetNext(cycles, rtl.Add(rtl.S(cycles), rtl.C(1, 64)))
	m.SetEnable(cycles, enExpr)

	m.Connect(clkEn, rtl.S(en))
	m.Connect(pausedOut, rtl.S(paused))
	m.Connect(stopOut, rtl.S(stop))
	return m
}
