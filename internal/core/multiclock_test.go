package core

import (
	"strings"
	"testing"

	"zoomie/internal/rtl"
	"zoomie/internal/sim"
)

func TestValidateMultiClockStepping(t *testing.T) {
	clocks := []sim.ClockSpec{
		{Name: "clk_fast", Period: 1},
		{Name: "clk_half", Period: 2},
		{Name: "clk_third", Period: 3},
		{Name: "clk_skewed", Period: 2, Phase: 1},
	}
	if err := ValidateMultiClockStepping(clocks, []string{"clk_fast"}); err != nil {
		t.Errorf("single domain rejected: %v", err)
	}
	if err := ValidateMultiClockStepping(clocks, []string{"clk_fast", "clk_half"}); err != nil {
		t.Errorf("frequency-multiple domains rejected: %v", err)
	}
	err := ValidateMultiClockStepping(clocks, []string{"clk_half", "clk_third"})
	if err == nil || !strings.Contains(err.Error(), "integer multiples") {
		t.Errorf("non-multiple periods accepted: %v", err)
	}
	// Same frequency, opposite phases: edges never coincide.
	err = ValidateMultiClockStepping(clocks, []string{"clk_half", "clk_skewed"})
	if err == nil || !strings.Contains(err.Error(), "aligned") {
		t.Errorf("phase-skewed domains accepted: %v", err)
	}
	// A phase offset that lands on the fast domain's edges is fine.
	if err := ValidateMultiClockStepping(clocks, []string{"clk_fast", "clk_skewed"}); err != nil {
		t.Errorf("edge-coincident skew rejected: %v", err)
	}
	if err := ValidateMultiClockStepping(clocks, []string{"clk_fast", "ghost"}); err == nil {
		t.Error("undeclared domain accepted")
	}
}

// TestMultiDomainGatedStepping: two phase-aligned, frequency-multiple
// domains gated by one controller step together, each advancing the exact
// number of its own edges.
func TestMultiDomainGatedStepping(t *testing.T) {
	m := rtl.NewModule("twoclk")
	qf := m.Output("qf", 8)
	qs := m.Output("qs", 8)
	fast := m.Reg("fast", 8, "clk", 0)
	m.SetNext(fast, rtl.Add(rtl.S(fast), rtl.C(1, 8)))
	slow := m.Reg("slow", 8, "clk_half", 0)
	m.SetNext(slow, rtl.Add(rtl.S(slow), rtl.C(1, 8)))
	m.Connect(qf, rtl.S(fast))
	m.Connect(qs, rtl.S(slow))

	clocks := []sim.ClockSpec{
		{Name: "clk", Period: 1},
		{Name: "clk_half", Period: 2},
		{Name: DebugClock, Period: 1},
	}
	gated := []string{"clk", "clk_half"}
	if err := ValidateMultiClockStepping(clocks, gated); err != nil {
		t.Fatal(err)
	}

	wrapped, meta, err := Instrument(rtl.NewDesign("twoclk", m), Config{Watches: []string{"qf"}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := rtl.Elaborate(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(f, clocks)
	if err != nil {
		t.Fatal(err)
	}
	for domain, gate := range meta.GateAll(gated) {
		if err := s.GateClock(domain, gate); err != nil {
			t.Fatal(err)
		}
	}

	s.Run(8)
	if v, _ := s.Peek("qf"); v != 8 {
		t.Fatalf("fast = %d, want 8", v)
	}
	if v, _ := s.Peek("qs"); v != 4 {
		t.Fatalf("slow = %d, want 4", v)
	}
	// Pause via host request: BOTH domains freeze on the same edge.
	s.Poke(meta.Reg(RegPauseReq), 1)
	s.Run(9)
	if v, _ := s.Peek("qf"); v != 8 {
		t.Errorf("fast ran while paused: %d", v)
	}
	if v, _ := s.Peek("qs"); v != 4 {
		t.Errorf("slow ran while paused: %d", v)
	}
	// Step 6 fast cycles: the half-rate domain advances exactly 3.
	s.Poke(meta.Reg(RegPauseReq), 0)
	s.Poke(meta.Reg(RegStepCnt), 6)
	s.Poke(meta.Reg(RegStepArm), 1)
	s.Poke(meta.Reg(RegPaused), 0)
	s.Run(20)
	if v, _ := s.Peek("qf"); v != 14 {
		t.Errorf("fast = %d after 6-step, want 14", v)
	}
	if v, _ := s.Peek("qs"); v != 7 {
		t.Errorf("slow = %d after 6-step, want 7", v)
	}
}
