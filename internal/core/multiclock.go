package core

import (
	"fmt"

	"zoomie/internal/sim"
)

// ValidateMultiClockStepping enforces the paper's §6.1 limitation:
// precise stepping across multiple gated clock domains is only possible
// when the domains are phase-aligned and their frequencies are integer
// multiples of one another — otherwise the shared gate signal would
// violate setup/hold in the slower domain. The clocks are looked up in
// the design's clock table; every gated domain must be declared.
func ValidateMultiClockStepping(clocks []sim.ClockSpec, gated []string) error {
	if len(gated) <= 1 {
		return nil
	}
	specs := make(map[string]sim.ClockSpec, len(clocks))
	for _, c := range clocks {
		specs[c.Name] = c
	}
	base := sim.ClockSpec{}
	for i, name := range gated {
		c, ok := specs[name]
		if !ok {
			return fmt.Errorf("core: gated domain %q is not a declared clock", name)
		}
		if i == 0 || c.Period < base.Period {
			if i != 0 && base.Period%c.Period != 0 {
				return fmt.Errorf("core: cannot step %q and %q together: periods %d and %d are not integer multiples (§6.1)",
					base.Name, c.Name, base.Period, c.Period)
			}
			base = c
			continue
		}
		if c.Period%base.Period != 0 {
			return fmt.Errorf("core: cannot step %q and %q together: periods %d and %d are not integer multiples (§6.1)",
				base.Name, c.Name, base.Period, c.Period)
		}
	}
	// Phase alignment: every gated domain's rising edges must coincide
	// with a rising edge of the fastest domain.
	for _, name := range gated {
		c := specs[name]
		if (c.Phase-base.Phase)%base.Period != 0 {
			return fmt.Errorf("core: cannot step %q with %q: phases %d vs %d are not aligned (§6.1)",
				c.Name, base.Name, c.Phase, base.Phase)
		}
	}
	return nil
}

// GateAll returns the clock-gate map driving every listed domain from
// this instrumentation's enable signal. Call ValidateMultiClockStepping
// first; Instrument's single-domain default remains Meta.Gates.
func (meta *Meta) GateAll(domains []string) map[string]string {
	out := make(map[string]string, len(domains))
	for _, d := range domains {
		out[d] = meta.GateSignal
	}
	return out
}
