package core

import (
	"fmt"

	"zoomie/internal/rtl"
)

// PauseBuffer builds the formally characterized skid buffer of §3.1 that
// makes a ready/valid channel safe to pause on either side. The buffer's
// own state lives on `clock`, which must never be gated (typically
// DebugClock); the producer and consumer may each be paused, signalled by
// the pause_up / pause_dn inputs (driven by the Debug Controller's
// ¬clk_en of the respective domain).
//
// Ports:
//
//	up_valid, up_data  -> in   (producer side)
//	up_ready           <- out
//	dn_valid, dn_data  <- out  (consumer side)
//	dn_ready           -> in
//	pause_up, pause_dn -> in
//
// The module guarantees, for any pause schedule (verified by the property
// tests in pausebuffer_test.go):
//
//  1. A transaction initiated before a pause is delivered after resume,
//     never lost: up_ready is masked during pause_up, so the producer
//     cannot believe a handshake completed while its clock was gated.
//  2. No phantom transactions: dn_valid is masked while the producer is
//     paused and empty, so the producer's frozen valid (Figure 3) is
//     never mistaken for a new transfer, and masked while the consumer
//     is paused so the consumer never misses a completion.
//  3. Zero added latency on an empty buffer while both sides run:
//     dn_valid/dn_data combinationally follow up_valid/up_data.
//
// Irrevocable interfaces (valid held until ready) are supported: masking
// never retracts an accepted transaction, it only delays the handshake.
func PauseBuffer(name string, width int, clock string) *rtl.Module {
	if width <= 0 || width > rtl.MaxWidth {
		panic(fmt.Sprintf("core: pause buffer width %d invalid", width))
	}
	m := rtl.NewModule(name)
	upValid := m.Input("up_valid", 1)
	upData := m.Input("up_data", width)
	upReady := m.Output("up_ready", 1)
	dnValid := m.Output("dn_valid", 1)
	dnData := m.Output("dn_data", width)
	dnReady := m.Input("dn_ready", 1)
	pauseUp := m.Input("pause_up", 1)
	pauseDn := m.Input("pause_dn", 1)

	full := m.Reg("full", 1, clock, 0)
	buf := m.Reg("buf", width, clock, 0)

	upRun := m.Wire("up_run", 1)
	m.Connect(upRun, rtl.Not(rtl.S(pauseUp)))
	dnRun := m.Wire("dn_run", 1)
	m.Connect(dnRun, rtl.Not(rtl.S(pauseDn)))

	// Producer may hand over only while running and the buffer is empty.
	m.Connect(upReady, rtl.And(rtl.S(upRun), rtl.Not(rtl.S(full))))

	// Consumer sees the buffered transaction if any; otherwise the live
	// one, masked while the producer is paused (the Figure 3 fix).
	m.Connect(dnValid, rtl.And(rtl.S(dnRun),
		rtl.Or(rtl.S(full), rtl.And(rtl.S(upValid), rtl.S(upRun)))))
	m.Connect(dnData, rtl.Mux(rtl.S(full), rtl.S(buf), rtl.S(upData)))

	upFire := m.Wire("up_fire", 1)
	m.Connect(upFire, rtl.And(rtl.S(upValid), rtl.And(rtl.S(upRun), rtl.Not(rtl.S(full)))))
	dnFire := m.Wire("dn_fire", 1)
	m.Connect(dnFire, rtl.And(rtl.And(rtl.S(dnReady), rtl.S(dnRun)),
		rtl.Or(rtl.S(full), rtl.And(rtl.S(upValid), rtl.S(upRun)))))

	// full': a transfer enters the buffer when the producer fires and the
	// consumer does not take it the same cycle; it leaves when the
	// consumer drains the buffer.
	m.SetNext(full, rtl.Mux(rtl.S(full),
		rtl.Not(rtl.S(dnFire)),                          // buffered: stays unless drained
		rtl.And(rtl.S(upFire), rtl.Not(rtl.S(dnFire))))) // live pass-through or capture
	m.SetNext(buf, rtl.Mux(rtl.And(rtl.S(upFire), rtl.Not(rtl.S(full))), rtl.S(upData), rtl.S(buf)))
	return m
}
