package core

import (
	"testing"

	"zoomie/internal/rtl"
	"zoomie/internal/sim"
)

// counterDesign is a user design: an 8-bit counter plus a "hot" flag that
// pulses when the counter is 0xF0 (used as an assertion-style source).
func counterDesign() *rtl.Design {
	m := rtl.NewModule("user_counter")
	q := m.Output("q", 8)
	hot := m.Output("hot", 1)
	cnt := m.Reg("cnt", 8, "clk", 0)
	m.SetNext(cnt, rtl.Add(rtl.S(cnt), rtl.C(1, 8)))
	m.Connect(q, rtl.S(cnt))
	m.Connect(hot, rtl.Eq(rtl.S(cnt), rtl.C(0xF0, 8)))
	return rtl.NewDesign("user_counter", m)
}

// instrumented builds the wrapped design and a simulator with the user
// clock gated by the controller.
func instrumented(t *testing.T, cfg Config) (*sim.Simulator, *Meta) {
	t.Helper()
	d, meta, err := Instrument(counterDesign(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := rtl.Elaborate(d)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(f, []sim.ClockSpec{
		{Name: "clk", Period: 1},
		{Name: DebugClock, Period: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.GateClock("clk", meta.GateSignal); err != nil {
		t.Fatal(err)
	}
	return s, meta
}

func peek(t *testing.T, s *sim.Simulator, name string) uint64 {
	t.Helper()
	v, err := s.Peek(name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func poke(t *testing.T, s *sim.Simulator, name string, v uint64) {
	t.Helper()
	if err := s.Poke(name, v); err != nil {
		t.Fatal(err)
	}
}

func TestFreeRunningWithoutTriggers(t *testing.T) {
	s, _ := instrumented(t, Config{Watches: []string{"q"}})
	s.Run(25)
	if got := peek(t, s, "q"); got != 25 {
		t.Errorf("q = %d after 25 ticks, want 25 (no trigger armed)", got)
	}
	if got := peek(t, s, "zoomie_paused"); got != 0 {
		t.Error("spuriously paused")
	}
}

func TestValueBreakpointPausesInExactCycle(t *testing.T) {
	s, meta := instrumented(t, Config{Watches: []string{"q"}})
	// Break when q == 17 (OR mode on watch 0).
	poke(t, s, meta.Reg(RegRefVal(0)), 17)
	poke(t, s, meta.Reg(RegOrMask(0)), 1)
	poke(t, s, meta.Reg(RegOrSel), 1)
	s.Run(60)
	if got := peek(t, s, "q"); got != 17 {
		t.Errorf("paused at q = %d, want exactly 17 (timing-precise pause)", got)
	}
	if got := peek(t, s, "zoomie_paused"); got != 1 {
		t.Error("paused flag not set")
	}
	// State is frozen while paused.
	s.Run(50)
	if got := peek(t, s, "q"); got != 17 {
		t.Errorf("q drifted to %d while paused", got)
	}
}

func TestAndComposition(t *testing.T) {
	s, meta := instrumented(t, Config{Watches: []string{"q", "hot"}})
	// AND: q == 0xF0 && hot == 1. hot pulses exactly when q is 0xF0.
	poke(t, s, meta.Reg(RegRefVal(0)), 0xF0)
	poke(t, s, meta.Reg(RegAndMask(0)), 1)
	poke(t, s, meta.Reg(RegRefVal(1)), 1)
	poke(t, s, meta.Reg(RegAndMask(1)), 1)
	poke(t, s, meta.Reg(RegAndSel), 1)
	s.Run(300)
	if got := peek(t, s, "q"); got != 0xF0 {
		t.Errorf("AND breakpoint paused at q=%#x, want 0xF0", got)
	}
}

func TestAndRequiresAllMaskedSignals(t *testing.T) {
	s, meta := instrumented(t, Config{Watches: []string{"q", "hot"}})
	// q == 5 AND hot == 1 never happens together; must not pause.
	poke(t, s, meta.Reg(RegRefVal(0)), 5)
	poke(t, s, meta.Reg(RegAndMask(0)), 1)
	poke(t, s, meta.Reg(RegRefVal(1)), 1)
	poke(t, s, meta.Reg(RegAndMask(1)), 1)
	poke(t, s, meta.Reg(RegAndSel), 1)
	s.Run(300)
	if got := peek(t, s, "zoomie_paused"); got != 0 {
		t.Error("AND condition fired although one conjunct never matched")
	}
}

func TestAndSelWithoutMasksDoesNotFire(t *testing.T) {
	s, meta := instrumented(t, Config{Watches: []string{"q"}})
	poke(t, s, meta.Reg(RegAndSel), 1) // armed but nothing masked in
	s.Run(50)
	if got := peek(t, s, "zoomie_paused"); got != 0 {
		t.Error("empty AND condition fired")
	}
}

func TestOrCompositionEitherSignal(t *testing.T) {
	s, meta := instrumented(t, Config{Watches: []string{"q", "hot"}})
	// OR: q == 200 or hot == 1; q reaches 200 before hot pulses (240).
	poke(t, s, meta.Reg(RegRefVal(0)), 200)
	poke(t, s, meta.Reg(RegOrMask(0)), 1)
	poke(t, s, meta.Reg(RegRefVal(1)), 1)
	poke(t, s, meta.Reg(RegOrMask(1)), 1)
	poke(t, s, meta.Reg(RegOrSel), 1)
	s.Run(300)
	if got := peek(t, s, "q"); got != 200 {
		t.Errorf("OR breakpoint paused at q=%d, want 200", got)
	}
}

func TestHostPauseAndResume(t *testing.T) {
	s, meta := instrumented(t, Config{Watches: []string{"q"}})
	s.Run(10)
	poke(t, s, meta.Reg(RegPauseReq), 1)
	s.Run(1)
	at := peek(t, s, "q")
	s.Run(30)
	if got := peek(t, s, "q"); got != at {
		t.Errorf("design ran while pause requested: %d -> %d", at, got)
	}
	// Resume: clear the request and the latched pause.
	poke(t, s, meta.Reg(RegPauseReq), 0)
	poke(t, s, meta.Reg(RegPaused), 0)
	s.Run(5)
	if got := peek(t, s, "q"); got != at+5 {
		t.Errorf("q = %d after resume, want %d", got, at+5)
	}
}

func TestCycleBreakpointStepsExactly(t *testing.T) {
	s, meta := instrumented(t, Config{Watches: []string{"q"}})
	// Pause immediately via host request, then step exactly 7 cycles.
	poke(t, s, meta.Reg(RegPauseReq), 1)
	s.Run(1)
	start := peek(t, s, "q")

	poke(t, s, meta.Reg(RegPauseReq), 0)
	poke(t, s, meta.Reg(RegStepCnt), 7)
	poke(t, s, meta.Reg(RegStepArm), 1)
	poke(t, s, meta.Reg(RegPaused), 0)
	s.Run(40)
	if got := peek(t, s, "q"); got != start+7 {
		t.Errorf("stepped to q=%d, want %d (exactly 7 cycles)", got, start+7)
	}
	if got := peek(t, s, "zoomie_paused"); got != 1 {
		t.Error("not paused after step completed")
	}
	// Step again: 1 cycle ("single stepping").
	poke(t, s, meta.Reg(RegStepCnt), 1)
	poke(t, s, meta.Reg(RegPaused), 0)
	s.Run(10)
	if got := peek(t, s, "q"); got != start+8 {
		t.Errorf("single step landed at q=%d, want %d", got, start+8)
	}
}

func TestAssertionBreakpoint(t *testing.T) {
	// The "hot" output doubles as a failing assertion source.
	mon := rtl.NewModule("hot_monitor")
	in := mon.Input("sig", 1)
	fail := mon.Output("fail", 1)
	mon.Connect(fail, rtl.S(in))

	s, meta := instrumented(t, Config{
		Watches:  []string{"q"},
		Monitors: []MonitorSpec{{Name: "hotmon", Module: mon, Bindings: map[string]string{"sig": "hot"}}},
	})
	if meta.AssertIndex("hotmon") != 0 {
		t.Fatal("assert index wrong")
	}
	s.Run(400)
	if got := peek(t, s, "q"); got != 0xF0 {
		t.Errorf("assertion breakpoint paused at q=%#x, want 0xF0", got)
	}
}

func TestAssertionCanBeDisabledDynamically(t *testing.T) {
	mon := rtl.NewModule("hot_monitor")
	in := mon.Input("sig", 1)
	fail := mon.Output("fail", 1)
	mon.Connect(fail, rtl.S(in))
	s, meta := instrumented(t, Config{
		Watches:  []string{"q"},
		Monitors: []MonitorSpec{{Name: "hotmon", Module: mon, Bindings: map[string]string{"sig": "hot"}}},
	})
	poke(t, s, meta.Reg(RegAssertEn(0)), 0) // disable on the fly
	s.Run(400)
	if got := peek(t, s, "zoomie_paused"); got != 0 {
		t.Error("disabled assertion still paused the design")
	}
}

func TestCycleCounterTracksExecutedCycles(t *testing.T) {
	s, meta := instrumented(t, Config{Watches: []string{"q"}})
	s.Run(20)
	poke(t, s, meta.Reg(RegPauseReq), 1)
	s.Run(10)
	if got := peek(t, s, meta.Reg(RegCycles)); got != 20 {
		t.Errorf("cycle_count = %d, want 20 (gated cycles must not count)", got)
	}
}

func TestInstrumentRejectsUnknownWatch(t *testing.T) {
	if _, _, err := Instrument(counterDesign(), Config{Watches: []string{"nosuch"}}); err == nil {
		t.Error("unknown watch accepted")
	}
}

func TestInstrumentRejectsBadMonitor(t *testing.T) {
	noFail := rtl.NewModule("nofail")
	in := noFail.Input("sig", 1)
	out := noFail.Output("ok", 1)
	noFail.Connect(out, rtl.S(in))
	_, _, err := Instrument(counterDesign(), Config{
		Monitors: []MonitorSpec{{Name: "m", Module: noFail, Bindings: map[string]string{"sig": "hot"}}},
	})
	if err == nil {
		t.Error("monitor without fail output accepted")
	}
	mon := rtl.NewModule("mon")
	mon.Input("sig", 1)
	f := mon.Output("fail", 1)
	mon.Connect(f, rtl.C(0, 1))
	_, _, err = Instrument(counterDesign(), Config{
		Monitors: []MonitorSpec{{Name: "m", Module: mon, Bindings: map[string]string{}}},
	})
	if err == nil {
		t.Error("unbound monitor input accepted")
	}
}

func TestMetaHelpers(t *testing.T) {
	_, meta, err := Instrument(counterDesign(), Config{Watches: []string{"q", "hot"}})
	if err != nil {
		t.Fatal(err)
	}
	if meta.WatchIndex("hot") != 1 || meta.WatchIndex("nosuch") != -1 {
		t.Error("WatchIndex broken")
	}
	if meta.Reg(RegPaused) != "zdbg.paused" {
		t.Errorf("Reg name = %q", meta.Reg(RegPaused))
	}
	names := meta.ControllerStateNames()
	if len(names) == 0 {
		t.Error("no controller state names")
	}
	if g := meta.Gates(); g["clk"] != "zdbg_clk_en" {
		t.Errorf("gates = %v", g)
	}
}
