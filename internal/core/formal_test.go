package core

import (
	"testing"

	"zoomie/internal/formal"
	"zoomie/internal/rtl"
)

// TestPauseBufferFormallyVerified is the §3.1 claim made literal: the
// pause buffer's data-integrity property is checked by the bounded model
// checker over EVERY pause schedule on both sides, to a reachable-state
// fixed point. The rig models clock gating as register enables (exactly
// what a gated clock does to state) and raises fail on any duplicated,
// lost or reordered transfer observed by the consumer.
func TestPauseBufferFormallyVerified(t *testing.T) {
	d := pauseBufferRig(t, true)
	res, err := formal.Check(d, formal.Options{Depth: 40, MaxStates: 150000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("pause buffer violated data integrity; schedule: %v", res.Trace)
	}
	if res.Depth >= 40 {
		t.Errorf("no fixed point within the bound (depth %d)", res.Depth)
	}
	t.Logf("proved over %d reachable states (fixed point at depth %d)", res.StatesExplored, res.Depth)
}

// TestNaiveGatingFormallyRefuted: the same checker finds the Figure 3
// protocol violation in the naive directly-wired version within a few
// cycles.
func TestNaiveGatingFormallyRefuted(t *testing.T) {
	d := pauseBufferRig(t, false)
	res, err := formal.Check(d, formal.Options{Depth: 10, MaxStates: 150000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("naive clock gating passed the model check; Figure 3 says otherwise")
	}
	if len(res.Trace) == 0 || len(res.Trace) > 6 {
		t.Errorf("counterexample length %d; the violation needs only a short schedule", len(res.Trace))
	}
}

// pauseBufferRig: producer -> (buffer | direct) -> consumer with pause_up
// and pause_dn as free inputs and a sequence checker driving fail.
func pauseBufferRig(t *testing.T, withBuffer bool) *rtl.Design {
	t.Helper()
	top := rtl.NewModule("pbrig")
	pauseUp := top.Input("pause_up", 1)
	pauseDn := top.Input("pause_dn", 1)
	fail := top.Output("fail", 1)

	upRun := top.Wire("up_run", 1)
	top.Connect(upRun, rtl.Not(rtl.S(pauseUp)))
	dnRun := top.Wire("dn_run", 1)
	top.Connect(dnRun, rtl.Not(rtl.S(pauseDn)))

	// Producer: 3-bit sequence counter; register enables model its gated
	// clock.
	seq := top.Reg("seq", 3, "clk", 0)
	pv := top.Wire("p_valid", 1)
	top.Connect(pv, rtl.C(1, 1)) // always offering
	pr := top.Wire("p_ready", 1)
	top.SetNext(seq, rtl.Add(rtl.S(seq), rtl.C(1, 3)))
	top.SetEnable(seq, rtl.And(rtl.S(upRun), rtl.And(rtl.S(pv), rtl.S(pr))))

	cv := top.Wire("c_valid", 1)
	cd := top.Wire("c_data", 3)
	cr := top.Wire("c_ready", 1)
	top.Connect(cr, rtl.C(1, 1))

	if withBuffer {
		pb := top.Instantiate("pb", PauseBuffer("pbuf", 3, DebugClock))
		pb.ConnectInput("up_valid", rtl.S(pv))
		pb.ConnectInput("up_data", rtl.S(seq))
		pb.ConnectInput("dn_ready", rtl.S(cr))
		pb.ConnectInput("pause_up", rtl.S(pauseUp))
		pb.ConnectInput("pause_dn", rtl.S(pauseDn))
		pb.ConnectOutput("up_ready", pr)
		pb.ConnectOutput("dn_valid", cv)
		pb.ConnectOutput("dn_data", cd)
	} else {
		// Figure 3: direct wiring across the gated boundary.
		top.Connect(pr, rtl.S(cr))
		top.Connect(cv, rtl.S(pv))
		top.Connect(cd, rtl.S(seq))
	}

	// Consumer + checker: every accepted transfer must carry the next
	// sequence number; its registers are gated by pause_dn.
	expect := top.Reg("expect", 3, "clk", 0)
	take := top.Wire("take", 1)
	top.Connect(take, rtl.And(rtl.S(dnRun), rtl.And(rtl.S(cv), rtl.S(cr))))
	top.SetNext(expect, rtl.Add(rtl.S(expect), rtl.C(1, 3)))
	top.SetEnable(expect, rtl.S(take))

	bad := top.Reg("bad", 1, "clk", 0)
	top.SetNext(bad, rtl.Or(rtl.S(bad),
		rtl.And(rtl.S(take), rtl.Ne(rtl.S(cd), rtl.S(expect)))))
	top.Connect(fail, rtl.Or(rtl.S(bad),
		rtl.And(rtl.S(take), rtl.Ne(rtl.S(cd), rtl.S(expect)))))

	// The buffer's own state lives on the never-gated debug clock, which
	// formal.Check drives as the same single clock — correct, because the
	// debug clock is free-running by construction.
	return rtl.NewDesign("pbrig", renameClocks(top))
}

// renameClocks folds the DebugClock domain onto "clk" for the single-
// clock model checker (they are frequency-locked in real deployments).
func renameClocks(m *rtl.Module) *rtl.Module {
	for _, r := range m.Registers {
		if r.Clock == DebugClock {
			r.Clock = "clk"
		}
	}
	for _, inst := range m.Instances {
		renameClocks(inst.Module)
	}
	return m
}
