package core

import (
	"testing"
	"testing/quick"

	"zoomie/internal/rtl"
	"zoomie/internal/sim"
)

// pauseRig wires producer -> (pause buffer | direct) -> consumer across a
// gated clock boundary. The producer lives in "clk_mut" (gatable); the
// consumer in "clk_ext" (free-running); the buffer, when present, on the
// never-gated DebugClock — the §3.1 topology.
type pauseRig struct {
	s *sim.Simulator
}

func producerModule() *rtl.Module {
	m := rtl.NewModule("producer")
	total := m.Input("total", 16)
	ready := m.Input("ready", 1)
	valid := m.Output("valid", 1)
	data := m.Output("data", 16)
	sent := m.Output("sent", 16)

	seq := m.Reg("seq", 16, "clk_mut", 0)
	active := m.Wire("active", 1)
	m.Connect(active, rtl.Lt(rtl.S(seq), rtl.S(total)))
	m.Connect(valid, rtl.S(active))
	m.Connect(data, rtl.S(seq))
	m.Connect(sent, rtl.S(seq))
	m.SetNext(seq, rtl.Add(rtl.S(seq), rtl.C(1, 16)))
	m.SetEnable(seq, rtl.And(rtl.S(active), rtl.S(ready)))
	return m
}

func consumerModule() *rtl.Module {
	m := rtl.NewModule("consumer")
	valid := m.Input("valid", 1)
	data := m.Input("data", 16)
	ready := m.Output("ready", 1)
	count := m.Output("count", 16)

	m.Connect(ready, rtl.C(1, 1))
	cnt := m.Reg("cnt", 16, "clk_ext", 0)
	m.SetNext(cnt, rtl.Add(rtl.S(cnt), rtl.C(1, 16)))
	m.SetEnable(cnt, rtl.S(valid))
	log := m.Mem("log", 16, 256)
	log.Write("clk_ext", rtl.Slice(rtl.S(cnt), 7, 0), rtl.S(data), rtl.S(valid))
	m.Connect(count, rtl.S(cnt))
	return m
}

// buildRig assembles the test design. withBuffer selects pause buffer vs
// the naive direct connection of Figure 3.
func buildRig(t *testing.T, withBuffer bool) *pauseRig {
	t.Helper()
	top := rtl.NewModule("rig")
	total := top.Input("total", 16)
	pauseUp := top.Input("pause_up", 1)
	pauseDn := top.Input("pause_dn", 1)
	sentOut := top.Output("sent", 16)
	countOut := top.Output("count", 16)

	pv := top.Wire("p_valid", 1)
	pd := top.Wire("p_data", 16)
	pr := top.Wire("p_ready", 1)
	cv := top.Wire("c_valid", 1)
	cd := top.Wire("c_data", 16)
	cr := top.Wire("c_ready", 1)

	pi := top.Instantiate("producer", producerModule())
	pi.ConnectInput("total", rtl.S(total))
	pi.ConnectInput("ready", rtl.S(pr))
	pi.ConnectOutput("valid", pv)
	pi.ConnectOutput("data", pd)
	pi.ConnectOutput("sent", sentOut)

	ci := top.Instantiate("consumer", consumerModule())
	ci.ConnectInput("valid", rtl.S(cv))
	ci.ConnectInput("data", rtl.S(cd))
	ci.ConnectOutput("ready", cr)
	ci.ConnectOutput("count", countOut)

	if withBuffer {
		bi := top.Instantiate("pbuf", PauseBuffer("pause_buffer", 16, DebugClock))
		bi.ConnectInput("up_valid", rtl.S(pv))
		bi.ConnectInput("up_data", rtl.S(pd))
		bi.ConnectInput("dn_ready", rtl.S(cr))
		bi.ConnectInput("pause_up", rtl.S(pauseUp))
		bi.ConnectInput("pause_dn", rtl.S(pauseDn))
		bi.ConnectOutput("up_ready", pr)
		bi.ConnectOutput("dn_valid", cv)
		bi.ConnectOutput("dn_data", cd)
	} else {
		// Naive direct connection: the Figure 3 wiring.
		top.Connect(pr, rtl.S(cr))
		top.Connect(cv, rtl.S(pv))
		top.Connect(cd, rtl.S(pd))
	}

	f, err := rtl.Elaborate(rtl.NewDesign("rig", top))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(f, []sim.ClockSpec{
		{Name: "clk_mut", Period: 1},
		{Name: "clk_ext", Period: 1},
		{Name: DebugClock, Period: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &pauseRig{s: s}
}

// setPause gates/ungates the producer and consumer clocks and drives the
// pause indication wires in lockstep, as the Debug Controller's clk_en
// does in an instrumented design.
func (r *pauseRig) setPause(up, dn bool) {
	r.s.SetHostGate("clk_mut", !up)
	r.s.SetHostGate("clk_ext", !dn)
	r.s.Poke("pause_up", b2u(up))
	r.s.Poke("pause_dn", b2u(dn))
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (r *pauseRig) received(t *testing.T) []uint64 {
	t.Helper()
	n, _ := r.s.Peek("count")
	out := make([]uint64, n)
	for i := range out {
		v, err := r.s.PeekMem("consumer.log", i)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v
	}
	return out
}

func TestFigure3NaiveGatingViolatesProtocol(t *testing.T) {
	r := buildRig(t, false)
	r.s.Poke("total", 100)
	r.setPause(false, false)
	r.s.Run(3)
	// Pause the producer mid-stream: its valid freezes high, the naive
	// wiring keeps presenting it, and the consumer double-counts.
	r.setPause(true, false)
	r.s.Run(5)
	r.setPause(false, false)
	r.s.Run(3)
	sent, _ := r.s.Peek("sent")
	count, _ := r.s.Peek("count")
	if count <= sent {
		t.Fatalf("expected duplicated transactions with naive gating; sent=%d received=%d", sent, count)
	}
	rx := r.received(t)
	dup := false
	for i := 1; i < len(rx); i++ {
		if rx[i] == rx[i-1] {
			dup = true
		}
	}
	if !dup {
		t.Error("no duplicate value observed despite overcount")
	}
}

func TestPauseBufferPreservesProtocolAcrossPause(t *testing.T) {
	r := buildRig(t, true)
	r.s.Poke("total", 20)
	r.setPause(false, false)
	r.s.Run(3)
	r.setPause(true, false) // pause producer, consumer keeps running
	r.s.Run(7)
	r.setPause(false, false)
	r.s.Run(40)
	rx := r.received(t)
	if len(rx) != 20 {
		t.Fatalf("received %d items, want 20", len(rx))
	}
	for i, v := range rx {
		if v != uint64(i) {
			t.Fatalf("rx[%d] = %d; lost/duplicated/reordered data", i, v)
		}
	}
}

func TestPauseBufferConsumerSidePause(t *testing.T) {
	r := buildRig(t, true)
	r.s.Poke("total", 20)
	r.setPause(false, false)
	r.s.Run(4)
	r.setPause(false, true) // consumer paused; producer may queue one item
	r.s.Run(6)
	r.setPause(false, false)
	r.s.Run(60)
	rx := r.received(t)
	if len(rx) != 20 {
		t.Fatalf("received %d items, want 20", len(rx))
	}
	for i, v := range rx {
		if v != uint64(i) {
			t.Fatalf("rx[%d] = %d", i, v)
		}
	}
}

func TestPauseBufferBothSidesPaused(t *testing.T) {
	r := buildRig(t, true)
	r.s.Poke("total", 10)
	r.setPause(false, false)
	r.s.Run(2)
	r.setPause(true, true)
	r.s.Run(10)
	mid, _ := r.s.Peek("count")
	r.setPause(false, false)
	r.s.Run(40)
	rx := r.received(t)
	if len(rx) != 10 {
		t.Fatalf("received %d items, want 10 (stalled at %d)", len(rx), mid)
	}
	for i, v := range rx {
		if v != uint64(i) {
			t.Fatalf("rx[%d] = %d", i, v)
		}
	}
}

func TestPauseBufferZeroLatencyWhenEmpty(t *testing.T) {
	// Guarantee 3: with no pending transaction and both sides running,
	// data passes through combinationally — consumer throughput matches a
	// direct connection exactly.
	direct := buildRig(t, false)
	buffered := buildRig(t, true)
	for _, r := range []*pauseRig{direct, buffered} {
		r.s.Poke("total", 50)
		r.setPause(false, false)
		r.s.Run(30)
	}
	dCount, _ := direct.s.Peek("count")
	bCount, _ := buffered.s.Peek("count")
	if dCount != bCount {
		t.Errorf("buffered throughput %d != direct %d: buffer adds latency when empty", bCount, dCount)
	}
}

// The §3.1 "formal verification" stand-in: for arbitrary pause schedules
// on both sides, the consumer receives exactly the items the producer
// sent, in order, with no loss and no duplication.
func TestPauseBufferScheduleProperty(t *testing.T) {
	f := func(schedule []byte) bool {
		if len(schedule) > 120 {
			schedule = schedule[:120]
		}
		r := buildRig(t, true)
		r.s.Poke("total", 500) // never exhausts during the schedule
		for _, b := range schedule {
			r.setPause(b&1 != 0, b&2 != 0)
			r.s.Run(1 + int(b>>6)) // hold each phase 1-4 ticks
		}
		// Drain with both sides running.
		r.setPause(false, false)
		r.s.Run(20)
		sent, _ := r.s.Peek("sent")
		rx := r.received(t)
		if uint64(len(rx)) != sent {
			t.Logf("sent %d, received %d", sent, len(rx))
			return false
		}
		for i, v := range rx {
			if v != uint64(i) {
				t.Logf("rx[%d] = %d", i, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Bounded model check: exhaustively enumerate all pause schedules over a
// short horizon, the exhaustive counterpart of the randomized property.
func TestPauseBufferBoundedExhaustive(t *testing.T) {
	const horizon = 6 // 4^6 = 4096 schedules
	total := 1 << (2 * horizon)
	for mask := 0; mask < total; mask++ {
		r := buildRig(t, true)
		r.s.Poke("total", 500)
		for step := 0; step < horizon; step++ {
			bits := mask >> (2 * step) & 3
			r.setPause(bits&1 != 0, bits&2 != 0)
			r.s.Run(1)
		}
		r.setPause(false, false)
		r.s.Run(8)
		sent, _ := r.s.Peek("sent")
		count, _ := r.s.Peek("count")
		if sent != count {
			t.Fatalf("schedule %#x: sent %d != received %d", mask, sent, count)
		}
		rx := r.received(t)
		for i, v := range rx {
			if v != uint64(i) {
				t.Fatalf("schedule %#x: rx[%d] = %d", mask, i, v)
			}
		}
	}
}

func TestPauseBufferPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for width 0")
		}
	}()
	PauseBuffer("bad", 0, DebugClock)
}
