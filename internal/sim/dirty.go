package sim

import (
	"sync"

	"zoomie/internal/rtl"
)

// Incremental settling. During compilation the engine records, for every
// signal slot and every memory, which compiled assigns read it (the
// fanout graph). State commits — register/memory updates at a clock
// edge, Poke, PokeMem — mark the fanout of each *changed* slot dirty,
// and settleDirty re-evaluates only the dirty assigns in levelized
// order, propagating further only when an assign's output actually
// changes. Because fanout edges always point to strictly higher levels,
// one ascending sweep over the level buckets settles the design.
//
// When a level's dirty set is wide (the 5400-core SoC has thousands of
// per-core cones that land in the same level), the sweep shards the
// bucket across goroutines: same-level assigns never read each other's
// destinations (readers are always at strictly higher levels) and each
// signal has exactly one driver, so the shards touch disjoint slots.

// minParallelLevel is the dirty-bucket size below which sharding is not
// worth the goroutine fan-out.
const minParallelLevel = 32

// dirtyState tracks which compiled assigns must be re-evaluated.
type dirtyState struct {
	levelOf   []int32   // assign -> level
	fanoutSig [][]int32 // signal slot -> assigns reading it
	fanoutMem [][]int32 // memory id -> assigns reading it
	inQueue   []bool    // assign -> already pending
	pending   [][]int32 // level -> pending assigns
	count     int       // total pending
}

// newDirtyState builds the fanout graph for a compiled design. order and
// level are the levelize results over f.Assigns; assign k of cp.assigns
// corresponds to f.Assigns[order[k]].
func newDirtyState(f *rtl.Flat, cp *compiled, sigIndex map[*rtl.Signal]int,
	order, level []int) *dirtyState {

	memIndex := make(map[*rtl.Memory]int, len(f.Memories))
	for i, m := range f.Memories {
		memIndex[m] = i
	}
	d := &dirtyState{
		levelOf:   make([]int32, len(order)),
		fanoutSig: make([][]int32, len(f.Signals)),
		fanoutMem: make([][]int32, len(f.Memories)),
		inQueue:   make([]bool, len(order)),
		pending:   make([][]int32, len(cp.byLevel)),
	}
	for k, oi := range order {
		d.levelOf[k] = int32(level[oi])
		seenSig := make(map[int]bool)
		seenMem := make(map[int]bool)
		f.Assigns[oi].Src.Walk(func(e rtl.Expr) {
			switch e.Op {
			case rtl.OpSig:
				slot := sigIndex[e.Sig]
				if !seenSig[slot] {
					seenSig[slot] = true
					d.fanoutSig[slot] = append(d.fanoutSig[slot], int32(k))
				}
			case rtl.OpMemRead:
				id := memIndex[e.Mem]
				if !seenMem[id] {
					seenMem[id] = true
					d.fanoutMem[id] = append(d.fanoutMem[id], int32(k))
				}
			}
		})
	}
	return d
}

// markSig queues every assign reading the given signal slot.
func (d *dirtyState) markSig(slot int) {
	for _, k := range d.fanoutSig[slot] {
		if !d.inQueue[k] {
			d.inQueue[k] = true
			lvl := d.levelOf[k]
			d.pending[lvl] = append(d.pending[lvl], k)
			d.count++
		}
	}
}

// markMem queues every assign with a combinational read of the memory.
func (d *dirtyState) markMem(id int) {
	for _, k := range d.fanoutMem[id] {
		if !d.inQueue[k] {
			d.inQueue[k] = true
			lvl := d.levelOf[k]
			d.pending[lvl] = append(d.pending[lvl], k)
			d.count++
		}
	}
}

// clear drops all pending work; called after a full settle has made the
// combinational state consistent wholesale.
func (d *dirtyState) clear() {
	if d.count == 0 {
		return
	}
	for lvl := range d.pending {
		for _, k := range d.pending[lvl] {
			d.inQueue[k] = false
		}
		d.pending[lvl] = d.pending[lvl][:0]
	}
	d.count = 0
}

// settleDirty re-evaluates the dirty fanout cone in levelized order.
func (s *Simulator) settleDirty() {
	d := s.dirty
	if d.count == 0 {
		return
	}
	cp := s.comp
	for lvl := 0; lvl < len(d.pending); lvl++ {
		q := d.pending[lvl]
		if len(q) == 0 {
			continue
		}
		d.count -= len(q)
		for _, k := range q {
			d.inQueue[k] = false
		}
		if s.shards > 1 && len(q) >= minParallelLevel {
			s.evalLevelParallel(q, true)
		} else {
			for _, k := range q {
				a := &cp.assigns[k]
				v := runCode(cp.code[a.x.start:a.x.end], cp.stack, s.vals, cp.memData)
				if s.vals[a.dst] != v {
					s.vals[a.dst] = v
					d.markSig(int(a.dst))
				}
			}
		}
		d.pending[lvl] = q[:0]
		if d.count == 0 {
			return
		}
	}
}

// settleFullCompiled evaluates every assign in levelized order,
// sharding wide levels when parallel settling is enabled. Afterwards the
// design is consistent regardless of prior dirty state.
func (s *Simulator) settleFullCompiled() {
	cp := s.comp
	for _, bucket := range cp.byLevel {
		if s.shards > 1 && len(bucket) >= minParallelLevel {
			s.evalLevelParallel(bucket, false)
		} else {
			for _, k := range bucket {
				a := &cp.assigns[k]
				s.vals[a.dst] = runCode(cp.code[a.x.start:a.x.end], cp.stack, s.vals, cp.memData)
			}
		}
	}
	if s.dirty != nil {
		s.dirty.clear()
	}
}

// evalLevelParallel evaluates one level's assigns across s.shards
// goroutines. Within a level all reads are of strictly-lower-level
// signals or of state, and every destination slot is distinct, so the
// shards are data-race free. With track set, changed destinations are
// collected per shard and their fanout marked after the barrier (marking
// mutates shared queues, so it stays on the caller's goroutine).
func (s *Simulator) evalLevelParallel(q []int32, track bool) {
	cp := s.comp
	nw := s.shards
	chunk := (len(q) + nw - 1) / nw
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo := w * chunk
		if lo >= len(q) {
			break
		}
		hi := lo + chunk
		if hi > len(q) {
			hi = len(q)
		}
		wg.Add(1)
		go func(w int, part []int32) {
			defer wg.Done()
			st := s.stacks[w]
			for _, k := range part {
				a := &cp.assigns[k]
				v := runCode(cp.code[a.x.start:a.x.end], st, s.vals, cp.memData)
				if s.vals[a.dst] != v {
					s.vals[a.dst] = v
					if track {
						s.changed[w] = append(s.changed[w], a.dst)
					}
				}
			}
		}(w, q[lo:hi])
	}
	wg.Wait()
	if track {
		for w := range s.changed {
			for _, dst := range s.changed[w] {
				s.dirty.markSig(int(dst))
			}
			s.changed[w] = s.changed[w][:0]
		}
	}
}
