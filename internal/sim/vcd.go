package sim

import (
	"fmt"
	"io"
	"strings"
)

// WriteVCD emits the tracer's samples as a Value Change Dump, the
// interchange waveform format every RTL viewer reads. One timestep per
// sample; only changing signals are emitted per step, per the format.
func (t *Tracer) WriteVCD(w io.Writer, timescale string) error {
	if timescale == "" {
		timescale = "1ns"
	}
	var b strings.Builder
	b.WriteString("$version zoomie sim tracer $end\n")
	fmt.Fprintf(&b, "$timescale %s $end\n", timescale)
	b.WriteString("$scope module dut $end\n")
	ids := make([]string, len(t.signals))
	for i, name := range t.signals {
		ids[i] = vcdID(i)
		sig := t.sim.Lookup(name)
		fmt.Fprintf(&b, "$var wire %d %s %s $end\n", sig.Width, ids[i], vcdName(name))
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")

	prev := make([]uint64, len(t.signals))
	for step, row := range t.rows {
		changed := false
		for i, v := range row {
			if step == 0 || v != prev[i] {
				changed = true
			}
		}
		if changed {
			fmt.Fprintf(&b, "#%d\n", step)
			for i, v := range row {
				if step != 0 && v == prev[i] {
					continue
				}
				sig := t.sim.Lookup(t.signals[i])
				if sig.Width == 1 {
					fmt.Fprintf(&b, "%d%s\n", v&1, ids[i])
				} else {
					fmt.Fprintf(&b, "b%b %s\n", v, ids[i])
				}
			}
		}
		copy(prev, row)
	}
	fmt.Fprintf(&b, "#%d\n", len(t.rows))
	_, err := io.WriteString(w, b.String())
	return err
}

// vcdID assigns the compact printable identifiers the format uses.
func vcdID(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(alphabet) {
		return string(alphabet[i])
	}
	return string(alphabet[i%len(alphabet)]) + vcdID(i/len(alphabet)-1)
}

// vcdName sanitizes hierarchical names for the $var declaration.
func vcdName(name string) string {
	return strings.ReplaceAll(name, ".", "_")
}
