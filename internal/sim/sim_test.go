package sim

import (
	"strings"
	"testing"
	"testing/quick"

	"zoomie/internal/rtl"
)

var oneClock = []ClockSpec{{Name: "clk", Period: 1}}

func flatten(t *testing.T, top *rtl.Module) *rtl.Flat {
	t.Helper()
	f, err := rtl.Elaborate(rtl.NewDesign(top.Name, top))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func newSim(t *testing.T, top *rtl.Module, clocks []ClockSpec) *Simulator {
	t.Helper()
	s, err := New(flatten(t, top), clocks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func counterModule() *rtl.Module {
	m := rtl.NewModule("counter")
	en := m.Input("en", 1)
	q := m.Output("q", 8)
	cnt := m.Reg("cnt", 8, "clk", 0)
	m.SetNext(cnt, rtl.Add(rtl.S(cnt), rtl.C(1, 8)))
	m.SetEnable(cnt, rtl.S(en))
	m.Connect(q, rtl.S(cnt))
	return m
}

func TestCounterCounts(t *testing.T) {
	s := newSim(t, counterModule(), oneClock)
	if err := s.Poke("en", 1); err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	if v, _ := s.Peek("q"); v != 5 {
		t.Errorf("q = %d after 5 cycles, want 5", v)
	}
	if err := s.Poke("en", 0); err != nil {
		t.Fatal(err)
	}
	s.Run(3)
	if v, _ := s.Peek("q"); v != 5 {
		t.Errorf("q = %d with enable low, want 5", v)
	}
}

func TestCounterWraps(t *testing.T) {
	s := newSim(t, counterModule(), oneClock)
	s.Poke("en", 1)
	s.Run(260)
	if v, _ := s.Peek("q"); v != 4 {
		t.Errorf("q = %d after 260 cycles, want 4 (mod 256)", v)
	}
}

func TestSynchronousReset(t *testing.T) {
	m := rtl.NewModule("rst")
	rst := m.Input("rst", 1)
	q := m.Output("q", 4)
	r := m.Reg("r", 4, "clk", 7)
	m.SetNext(r, rtl.Add(rtl.S(r), rtl.C(1, 4)))
	m.SetReset(r, rtl.S(rst))
	m.Connect(q, rtl.S(r))

	s := newSim(t, m, oneClock)
	if v, _ := s.Peek("q"); v != 7 {
		t.Fatalf("init value = %d, want 7", v)
	}
	s.Run(2)
	if v, _ := s.Peek("q"); v != 9 {
		t.Fatalf("q = %d, want 9", v)
	}
	s.Poke("rst", 1)
	s.Run(1)
	if v, _ := s.Peek("q"); v != 7 {
		t.Errorf("q = %d after sync reset, want init 7", v)
	}
}

func TestCombinationalChainSettlesInOneTick(t *testing.T) {
	m := rtl.NewModule("chain")
	a := m.Input("a", 8)
	// w3 depends on w2 depends on w1, declared out of order.
	w3 := m.Wire("w3", 8)
	w1 := m.Wire("w1", 8)
	w2 := m.Wire("w2", 8)
	out := m.Output("out", 8)
	m.Connect(w3, rtl.Add(rtl.S(w2), rtl.C(1, 8)))
	m.Connect(w2, rtl.Add(rtl.S(w1), rtl.C(1, 8)))
	m.Connect(w1, rtl.Add(rtl.S(a), rtl.C(1, 8)))
	m.Connect(out, rtl.S(w3))

	s := newSim(t, m, oneClock)
	s.Poke("a", 10)
	if v, _ := s.Peek("out"); v != 13 {
		t.Errorf("out = %d, want 13", v)
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	m := rtl.NewModule("loop")
	a := m.Wire("a", 1)
	b := m.Wire("b", 1)
	m.Connect(a, rtl.Not(rtl.S(b)))
	m.Connect(b, rtl.Not(rtl.S(a)))
	_, err := New(flatten(t, m), oneClock)
	if err == nil || !strings.Contains(err.Error(), "combinational loop") {
		t.Errorf("loop not detected: %v", err)
	}
}

func TestUndeclaredClockRejected(t *testing.T) {
	m := rtl.NewModule("badclk")
	r := m.Reg("r", 1, "mystery", 0)
	m.SetNext(r, rtl.S(r))
	_, err := New(flatten(t, m), oneClock)
	if err == nil || !strings.Contains(err.Error(), "mystery") {
		t.Errorf("undeclared clock not rejected: %v", err)
	}
}

func TestMultiClockDomains(t *testing.T) {
	m := rtl.NewModule("twoclk")
	fast := m.Reg("fast", 8, "clk_fast", 0)
	m.SetNext(fast, rtl.Add(rtl.S(fast), rtl.C(1, 8)))
	slow := m.Reg("slow", 8, "clk_slow", 0)
	m.SetNext(slow, rtl.Add(rtl.S(slow), rtl.C(1, 8)))

	s := newSim(t, m, []ClockSpec{
		{Name: "clk_fast", Period: 1},
		{Name: "clk_slow", Period: 4},
	})
	s.Run(8)
	if v, _ := s.Peek("fast"); v != 8 {
		t.Errorf("fast = %d, want 8", v)
	}
	if v, _ := s.Peek("slow"); v != 2 {
		t.Errorf("slow = %d, want 2", v)
	}
	if s.Cycles("clk_fast") != 8 || s.Cycles("clk_slow") != 2 {
		t.Errorf("cycle counts: fast=%d slow=%d", s.Cycles("clk_fast"), s.Cycles("clk_slow"))
	}
}

func TestClockPhase(t *testing.T) {
	m := rtl.NewModule("phase")
	r := m.Reg("r", 8, "clk", 0)
	m.SetNext(r, rtl.Add(rtl.S(r), rtl.C(1, 8)))
	s := newSim(t, m, []ClockSpec{{Name: "clk", Period: 2, Phase: 1}})
	s.Run(1) // tick 0: no edge (phase 1)
	if v, _ := s.Peek("r"); v != 0 {
		t.Errorf("r = %d at tick 1, want 0", v)
	}
	s.Run(1) // tick 1: rising edge
	if v, _ := s.Peek("r"); v != 1 {
		t.Errorf("r = %d at tick 2, want 1", v)
	}
}

func TestHostClockGate(t *testing.T) {
	s := newSim(t, counterModule(), oneClock)
	s.Poke("en", 1)
	s.Run(3)
	s.SetHostGate("clk", false)
	s.Run(10)
	if v, _ := s.Peek("q"); v != 3 {
		t.Errorf("q = %d while host-gated, want 3", v)
	}
	if s.Cycles("clk") != 3 {
		t.Errorf("gated edges were counted: %d", s.Cycles("clk"))
	}
	s.SetHostGate("clk", true)
	s.Run(2)
	if v, _ := s.Peek("q"); v != 5 {
		t.Errorf("q = %d after resume, want 5", v)
	}
}

func TestInDesignClockGate(t *testing.T) {
	m := rtl.NewModule("gated")
	gateEn := m.Input("gate_en", 1)
	ce := m.Wire("ce", 1)
	m.Connect(ce, rtl.S(gateEn))
	cnt := m.Reg("cnt", 8, "clk", 0)
	m.SetNext(cnt, rtl.Add(rtl.S(cnt), rtl.C(1, 8)))
	q := m.Output("q", 8)
	m.Connect(q, rtl.S(cnt))

	s := newSim(t, m, oneClock)
	if err := s.GateClock("clk", "ce"); err != nil {
		t.Fatal(err)
	}
	s.Poke("gate_en", 1)
	s.Run(4)
	s.Poke("gate_en", 0)
	s.Run(4)
	if v, _ := s.Peek("q"); v != 4 {
		t.Errorf("q = %d with design gate low, want 4", v)
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := rtl.NewModule("ram")
	we := m.Input("we", 1)
	addr := m.Input("addr", 4)
	din := m.Input("din", 16)
	dout := m.Output("dout", 16)
	mem := m.Mem("mem", 16, 16)
	mem.Write("clk", rtl.S(addr), rtl.S(din), rtl.S(we))
	m.Connect(dout, rtl.MemRead(mem, rtl.S(addr)))

	s := newSim(t, m, oneClock)
	s.Poke("we", 1)
	s.Poke("addr", 3)
	s.Poke("din", 0xBEEF)
	s.Run(1)
	s.Poke("we", 0)
	if v, _ := s.Peek("dout"); v != 0xBEEF {
		t.Errorf("dout = %#x, want 0xBEEF", v)
	}
	if v, err := s.PeekMem("mem", 3); err != nil || v != 0xBEEF {
		t.Errorf("PeekMem = %#x, %v", v, err)
	}
	if err := s.PokeMem("mem", 3, 0xCAFE); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("dout"); v != 0xCAFE {
		t.Errorf("dout = %#x after PokeMem, want 0xCAFE", v)
	}
}

func TestMemoryInit(t *testing.T) {
	m := rtl.NewModule("rom")
	addr := m.Input("addr", 2)
	dout := m.Output("dout", 8)
	rom := m.Mem("rom", 8, 4)
	rom.Init = map[int]uint64{0: 11, 1: 22, 2: 33, 3: 44}
	m.Connect(dout, rtl.MemRead(rom, rtl.S(addr)))

	s := newSim(t, m, oneClock)
	for i, want := range []uint64{11, 22, 33, 44} {
		s.Poke("addr", uint64(i))
		if v, _ := s.Peek("dout"); v != want {
			t.Errorf("rom[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestPokeRejectsWires(t *testing.T) {
	m := rtl.NewModule("w")
	a := m.Input("a", 4)
	w := m.Wire("w", 4)
	m.Connect(w, rtl.S(a))
	out := m.Output("out", 4)
	m.Connect(out, rtl.S(w))
	s := newSim(t, m, oneClock)
	if err := s.Poke("w", 3); err == nil {
		t.Error("poking a wire should fail")
	}
	if err := s.Poke("out", 3); err == nil {
		t.Error("poking an output should fail")
	}
	if _, err := s.Peek("nosuch"); err == nil {
		t.Error("peeking a missing signal should fail")
	}
}

func TestPokeRegisterForcesValue(t *testing.T) {
	s := newSim(t, counterModule(), oneClock)
	s.Poke("en", 1)
	s.Run(2)
	if err := s.Poke("cnt", 100); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("q"); v != 100 {
		t.Errorf("q = %d right after poke, want 100 (comb must resettle)", v)
	}
	s.Run(1)
	if v, _ := s.Peek("q"); v != 101 {
		t.Errorf("q = %d, want 101", v)
	}
}

func TestRunUntil(t *testing.T) {
	s := newSim(t, counterModule(), oneClock)
	s.Poke("en", 1)
	n, ok := s.RunUntil(func() bool {
		v, _ := s.Peek("q")
		return v == 7
	}, 100)
	if !ok || n != 7 {
		t.Errorf("RunUntil = (%d, %v), want (7, true)", n, ok)
	}
	_, ok = s.RunUntil(func() bool { return false }, 5)
	if ok {
		t.Error("RunUntil reported success for impossible condition")
	}
}

// Property: for random enable schedules, the counter value equals the
// number of enabled cycles (mod 256). This is the basic contract that
// clock-enable semantics never lose or duplicate an edge.
func TestCounterEnableScheduleProperty(t *testing.T) {
	f := func(schedule []bool) bool {
		if len(schedule) > 200 {
			schedule = schedule[:200]
		}
		s := newSim(t, counterModule(), oneClock)
		want := uint64(0)
		for _, en := range schedule {
			if en {
				s.Poke("en", 1)
				want++
			} else {
				s.Poke("en", 0)
			}
			s.Run(1)
		}
		got, _ := s.Peek("q")
		return got == want%256
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTracer(t *testing.T) {
	s := newSim(t, counterModule(), oneClock)
	s.Poke("en", 1)
	tr, err := NewTracer(s, "en", "q")
	if err != nil {
		t.Fatal(err)
	}
	tr.Sample()
	for i := 0; i < 3; i++ {
		tr.Step()
	}
	if tr.Len() != 4 {
		t.Fatalf("tracer has %d samples, want 4", tr.Len())
	}
	if v, ok := tr.Value(3, "q"); !ok || v != 3 {
		t.Errorf("trace q@3 = %d, %v", v, ok)
	}
	if out := tr.Render(); !strings.Contains(out, "q") {
		t.Errorf("render missing signal name: %q", out)
	}
	if _, err := NewTracer(s, "nosuch"); err == nil {
		t.Error("tracer accepted unknown signal")
	}
}

func TestWriteVCD(t *testing.T) {
	s := newSim(t, counterModule(), oneClock)
	s.Poke("en", 1)
	tr, err := NewTracer(s, "en", "q")
	if err != nil {
		t.Fatal(err)
	}
	tr.Sample()
	for i := 0; i < 5; i++ {
		tr.Step()
	}
	var buf strings.Builder
	if err := tr.WriteVCD(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$var wire 1 ! en $end",
		"$var wire 8 \" q $end",
		"$enddefinitions $end",
		"#0", "b101 \"", // q = 5 at the final change
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Unchanged signals are not re-emitted: "en" appears once after #0.
	if n := strings.Count(out, "1!"); n != 1 {
		t.Errorf("en emitted %d times, want 1", n)
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at %d", id, i)
		}
		seen[id] = true
	}
}

// Determinism: identical designs and schedules produce identical state,
// guarding the simulator against map-iteration nondeterminism.
func TestSimulatorDeterminism(t *testing.T) {
	build := func() *Simulator {
		return newSim(t, snapshotTestModule(), oneClock)
	}
	a, b := build(), build()
	for i := 0; i < 50; i++ {
		en := uint64(i % 3 % 2)
		a.Poke("en", en)
		b.Poke("en", en)
		a.Tick()
		b.Tick()
	}
	sa, sb := a.Snapshot("clk"), b.Snapshot("clk")
	if !sa.Equal(sb) {
		t.Fatalf("identical runs diverged: %v", sa.Diff(sb))
	}
}
