package sim

import (
	"fmt"
	"sort"

	"zoomie/internal/rtl"
)

// Snapshot is a complete copy of a design's architectural state: every
// register value and every memory word, keyed by flat hierarchical name.
// Snapshots are what Zoomie reads back from the FPGA and what it writes
// through partial reconfiguration when resuming from saved progress.
type Snapshot struct {
	Cycle uint64
	Regs  map[string]uint64
	Mems  map[string][]uint64
}

// Snapshot captures the current state. The cycle recorded is the count of
// the given clock domain.
func (s *Simulator) Snapshot(domain string) *Snapshot {
	snap := &Snapshot{
		Cycle: s.cycles[domain],
		Regs:  make(map[string]uint64, len(s.Flat.Registers)),
		Mems:  make(map[string][]uint64, len(s.Flat.Memories)),
	}
	for _, r := range s.Flat.Registers {
		snap.Regs[r.Sig.Name] = s.vals[s.sigIndex[r.Sig]]
	}
	for _, m := range s.Flat.Memories {
		snap.Mems[m.Name] = append([]uint64(nil), s.mems[m]...)
	}
	return snap
}

// Restore loads a snapshot's state into the simulator and resettles
// combinational logic. Entries naming unknown state are reported as
// errors; state not mentioned in the snapshot is left untouched, which is
// how partial reconfiguration behaves (only the written tiles change).
func (s *Simulator) Restore(snap *Snapshot) error {
	for name, v := range snap.Regs {
		sig := s.byName[name]
		if sig == nil || sig.Kind != rtl.KindReg {
			return fmt.Errorf("sim: snapshot names unknown register %q", name)
		}
		s.vals[s.sigIndex[sig]] = rtl.Truncate(v, sig.Width)
	}
	for name, words := range snap.Mems {
		mem := s.findMem(name)
		if mem == nil {
			return fmt.Errorf("sim: snapshot names unknown memory %q", name)
		}
		if len(words) != mem.Depth {
			return fmt.Errorf("sim: snapshot memory %q has %d words, want %d",
				name, len(words), mem.Depth)
		}
		copy(s.mems[mem], words)
	}
	s.settle()
	return nil
}

// StateNames returns all register names followed by all memory names, each
// group sorted, describing what a full snapshot contains.
func (s *Simulator) StateNames() (regs, mems []string) {
	for _, r := range s.Flat.Registers {
		regs = append(regs, r.Sig.Name)
	}
	for _, m := range s.Flat.Memories {
		mems = append(mems, m.Name)
	}
	sort.Strings(regs)
	sort.Strings(mems)
	return regs, mems
}

// Equal reports whether two snapshots hold identical state (cycle counts
// are ignored; they are bookkeeping, not design state).
func (a *Snapshot) Equal(b *Snapshot) bool {
	if len(a.Regs) != len(b.Regs) || len(a.Mems) != len(b.Mems) {
		return false
	}
	for k, v := range a.Regs {
		if bv, ok := b.Regs[k]; !ok || bv != v {
			return false
		}
	}
	for k, av := range a.Mems {
		bv, ok := b.Mems[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// Diff returns the names of registers whose values differ between the two
// snapshots, sorted. Memories are compared word-wise and reported as
// "name[addr]".
func (a *Snapshot) Diff(b *Snapshot) []string {
	var out []string
	for k, v := range a.Regs {
		if bv, ok := b.Regs[k]; ok && bv != v {
			out = append(out, k)
		}
	}
	for k, av := range a.Mems {
		bv, ok := b.Mems[k]
		if !ok {
			continue
		}
		for i := range av {
			if i < len(bv) && av[i] != bv[i] {
				out = append(out, fmt.Sprintf("%s[%d]", k, i))
			}
		}
	}
	sort.Strings(out)
	return out
}
