package sim

import "zoomie/internal/rtl"

// RegDelta is one committed change to an architectural state slot (a
// register or an input port). Slot indexes the simulator's value array;
// StateSlots maps slots to flat names.
type RegDelta struct {
	Slot int32
	Val  uint64
}

// MemDelta is one committed change to a memory word. Mem is the stable
// memory id (the memory's index in Flat.Memories; StateMems maps ids to
// names).
type MemDelta struct {
	Mem  int32
	Addr int32
	Val  uint64
}

// CommitHook observes committed state changes. It is the delta-export
// seam the time-travel history engine records through: because the
// commit loops already change-detect (that is what feeds the dirty-set
// settler), the hook only ever sees slots whose values actually changed,
// so recording cost is proportional to design activity, not design size.
//
// OnTick fires once per simulator tick, after commit and settle, with
// the register and memory words that changed in that tick. OnHostWrite
// fires for out-of-band host mutations (Poke/PokeMem — which is where
// configuration-frame writes from the debugger land). The delta slices
// are scratch buffers owned by the simulator: implementations must
// consume or copy them before returning and must not retain them.
//
// Hook callbacks run synchronously on the caller's goroutine and must
// not call back into the Simulator's mutating methods.
type CommitHook interface {
	OnTick(tick uint64, regs []RegDelta, mems []MemDelta)
	OnHostWrite(regs []RegDelta, mems []MemDelta)
}

// SetCommitHook installs (or, with nil, removes) the commit hook. With a
// hook installed the interpreter engine's commit loop change-detects
// exactly like the compiled engine's, so both engines feed the hook
// identical delta streams.
func (s *Simulator) SetCommitHook(h CommitHook) { s.hook = h }

// StateSlot describes one architecturally writable state slot: a
// register or an input port. Wires and outputs are functions of these
// and are excluded — reconstructing slots and re-settling reconstructs
// everything.
type StateSlot struct {
	Idx   int32
	Name  string
	Width int
	Input bool // input port (not restorable through configuration frames)
}

// StateSlots returns every state slot in the stable Flat.Signals order.
func (s *Simulator) StateSlots() []StateSlot {
	var out []StateSlot
	for _, sig := range s.Flat.Signals {
		if sig.Kind == rtl.KindWire || sig.Kind == rtl.KindOutput {
			continue
		}
		out = append(out, StateSlot{
			Idx:   int32(s.sigIndex[sig]),
			Name:  sig.Name,
			Width: sig.Width,
			Input: sig.Kind == rtl.KindInput,
		})
	}
	return out
}

// StateMem describes one memory as seen by MemDelta ids.
type StateMem struct {
	ID    int32
	Name  string
	Depth int
	Width int
}

// StateMems returns every memory in the stable Flat.Memories order; the
// slice index equals the MemDelta id.
func (s *Simulator) StateMems() []StateMem {
	out := make([]StateMem, len(s.Flat.Memories))
	for i, m := range s.Flat.Memories {
		out[i] = StateMem{ID: int32(i), Name: m.Name, Depth: m.Depth, Width: m.Width}
	}
	return out
}

// SlotValue reads one state slot directly; it is the hook-side
// counterpart of Peek for keyframe capture.
func (s *Simulator) SlotValue(idx int32) uint64 { return s.vals[idx] }

// CopyMemInto copies the backing words of memory id into dst, which must
// have the memory's depth.
func (s *Simulator) CopyMemInto(id int32, dst []uint64) {
	copy(dst, s.mems[s.Flat.Memories[id]])
}

// hookMemID returns the stable memory id for the hook delta stream. The
// compiled engine's internal memory ids are assigned in Flat.Memories
// order too, so cMemUpdate ids can be reported as-is; this lookup serves
// the interpreter and the Poke paths.
func (s *Simulator) hookMemID(mem *rtl.Memory) int32 {
	if s.comp != nil {
		return int32(s.comp.memID[mem])
	}
	if s.memIdx == nil {
		s.memIdx = make(map[*rtl.Memory]int32, len(s.Flat.Memories))
		for i, m := range s.Flat.Memories {
			s.memIdx[m] = int32(i)
		}
	}
	return s.memIdx[mem]
}
