// Package sim is a cycle-accurate, multi-clock-domain simulator for
// elaborated (flat) RTL designs.
//
// The simulator advances in ticks. Each clock domain has a period and
// phase measured in ticks; a domain "rises" on ticks where
// (tick-phase) mod period == 0. A tick proceeds in three steps:
//
//  1. settle all combinational assignments in levelized order,
//  2. for every rising and enabled domain, compute register next-values
//     and memory writes against the settled state,
//  3. commit the staged updates.
//
// Clock gating is first-class: a domain may be gated by a combinational
// signal of the design itself (the Debug Controller's clock enable), which
// models the glitch-free BUFGCE-style primitives Zoomie relies on, or
// force-gated from the host, which models the configuration controller
// stopping a clock.
package sim

import (
	"fmt"
	"sort"

	"zoomie/internal/rtl"
)

// ClockSpec describes one clock domain.
type ClockSpec struct {
	Name   string
	Period int // in ticks, >= 1
	Phase  int // tick offset of the first rising edge
}

// Simulator executes a flat design.
type Simulator struct {
	Flat   *rtl.Flat
	clocks []ClockSpec

	sigIndex map[*rtl.Signal]int
	byName   map[string]*rtl.Signal
	vals     []uint64

	order []rtl.Assign // levelized combinational order

	mems map[*rtl.Memory][]uint64

	regsByClock map[string][]*rtl.Register
	memWrites   map[string][]memWrite

	// gates maps a domain name to an optional in-design 1-bit gate signal;
	// hostGate force-disables a domain regardless of the in-design gate.
	gates    map[string]*rtl.Signal
	hostGate map[string]bool

	tick    uint64
	cycles  map[string]uint64 // completed rising edges per domain
	staged  []regUpdate
	stagedM []memUpdate
}

type memWrite struct {
	mem  *rtl.Memory
	port rtl.MemoryWritePort
}

type regUpdate struct {
	idx int
	val uint64
}

type memUpdate struct {
	mem  *rtl.Memory
	addr int
	val  uint64
}

// New builds a simulator for the flat design with the given clock domains.
// Every domain referenced by a register must be listed.
func New(f *rtl.Flat, clocks []ClockSpec) (*Simulator, error) {
	s := &Simulator{
		Flat:        f,
		clocks:      append([]ClockSpec(nil), clocks...),
		sigIndex:    make(map[*rtl.Signal]int, len(f.Signals)),
		byName:      make(map[string]*rtl.Signal, len(f.Signals)),
		mems:        make(map[*rtl.Memory][]uint64, len(f.Memories)),
		regsByClock: make(map[string][]*rtl.Register),
		memWrites:   make(map[string][]memWrite),
		gates:       make(map[string]*rtl.Signal),
		hostGate:    make(map[string]bool),
		cycles:      make(map[string]uint64),
	}
	known := make(map[string]bool)
	for _, c := range s.clocks {
		if c.Period < 1 {
			return nil, fmt.Errorf("sim: clock %q: period must be >= 1", c.Name)
		}
		if known[c.Name] {
			return nil, fmt.Errorf("sim: duplicate clock %q", c.Name)
		}
		known[c.Name] = true
	}
	for _, s2 := range f.Signals {
		s.sigIndex[s2] = len(s.vals)
		s.byName[s2.Name] = s2
		s.vals = append(s.vals, 0)
	}
	for _, r := range f.Registers {
		if !known[r.Clock] {
			return nil, fmt.Errorf("sim: register %q uses undeclared clock %q", r.Sig.Name, r.Clock)
		}
		s.regsByClock[r.Clock] = append(s.regsByClock[r.Clock], r)
		s.vals[s.sigIndex[r.Sig]] = r.Init
	}
	for _, mem := range f.Memories {
		data := make([]uint64, mem.Depth)
		for k, v := range mem.Init {
			data[k] = rtl.Truncate(v, mem.Width)
		}
		s.mems[mem] = data
		for _, w := range mem.Writes {
			if !known[w.Clock] {
				return nil, fmt.Errorf("sim: memory %q uses undeclared clock %q", mem.Name, w.Clock)
			}
			s.memWrites[w.Clock] = append(s.memWrites[w.Clock], memWrite{mem, w})
		}
	}
	order, err := levelize(f)
	if err != nil {
		return nil, err
	}
	s.order = order
	s.settle()
	return s, nil
}

// levelize topologically sorts the combinational assignments so each is
// evaluated after all assignments it reads from. Registers, inputs and
// memory contents are state and impose no ordering.
func levelize(f *rtl.Flat) ([]rtl.Assign, error) {
	producer := make(map[*rtl.Signal]int) // signal -> assign index
	for i, a := range f.Assigns {
		producer[a.Dst] = i
	}
	n := len(f.Assigns)
	deps := make([][]int, n)  // deps[i] = assigns that must run before i
	indeg := make([]int, n)   // number of unmet deps
	users := make([][]int, n) // reverse edges
	for i, a := range f.Assigns {
		seen := make(map[int]bool)
		a.Src.VisitSignals(func(sig *rtl.Signal) {
			if sig.Kind == rtl.KindWire || sig.Kind == rtl.KindOutput {
				if p, ok := producer[sig]; ok && !seen[p] {
					seen[p] = true
					deps[i] = append(deps[i], p)
				}
			}
		})
		indeg[i] = len(deps[i])
		for _, p := range deps[i] {
			users[p] = append(users[p], i)
		}
	}
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]rtl.Assign, 0, n)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, f.Assigns[i])
		for _, u := range users[i] {
			indeg[u]--
			if indeg[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	if len(order) != n {
		var cyc []string
		for i := 0; i < n && len(cyc) < 8; i++ {
			if indeg[i] > 0 {
				cyc = append(cyc, f.Assigns[i].Dst.Name)
			}
		}
		sort.Strings(cyc)
		return nil, fmt.Errorf("sim: combinational loop involving %v", cyc)
	}
	return order, nil
}

// SignalValue implements rtl.Env.
func (s *Simulator) SignalValue(sig *rtl.Signal) uint64 { return s.vals[s.sigIndex[sig]] }

// MemValue implements rtl.Env. Addresses wrap modulo the depth, matching
// the power-of-two truncation of real block RAM address ports.
func (s *Simulator) MemValue(mem *rtl.Memory, addr uint64) uint64 {
	data := s.mems[mem]
	return data[int(addr)%len(data)]
}

func (s *Simulator) settle() {
	for _, a := range s.order {
		s.vals[s.sigIndex[a.Dst]] = rtl.Eval(a.Src, s)
	}
}

// GateClock attaches an in-design 1-bit signal as the clock enable of a
// domain. When the signal settles to 0 in a tick, registers and memory
// writes of that domain hold their values for that tick.
func (s *Simulator) GateClock(domain, signalName string) error {
	sig := s.byName[signalName]
	if sig == nil {
		return fmt.Errorf("sim: no signal %q", signalName)
	}
	if sig.Width != 1 {
		return fmt.Errorf("sim: clock gate %q must be 1 bit", signalName)
	}
	s.gates[domain] = sig
	return nil
}

// SetHostGate force-gates (enabled=false) or releases a clock domain from
// the host side, independent of any in-design gate. This models the
// configuration microcontroller stopping the clock.
func (s *Simulator) SetHostGate(domain string, enabled bool) {
	s.hostGate[domain] = !enabled
}

// domainEnabled reports whether a domain's registers update this tick,
// assuming the domain rises.
func (s *Simulator) domainEnabled(domain string) bool {
	if s.hostGate[domain] {
		return false
	}
	if g, ok := s.gates[domain]; ok {
		return s.vals[s.sigIndex[g]] != 0
	}
	return true
}

// rises reports whether the clock domain has a rising edge at tick t.
func rises(c ClockSpec, t uint64) bool {
	pt := int64(t) - int64(c.Phase)
	return pt >= 0 && pt%int64(c.Period) == 0
}

// Tick advances the simulation by one tick.
func (s *Simulator) Tick() {
	s.settle()
	s.staged = s.staged[:0]
	s.stagedM = s.stagedM[:0]
	for _, c := range s.clocks {
		if !rises(c, s.tick) {
			continue
		}
		if !s.domainEnabled(c.Name) {
			continue
		}
		s.cycles[c.Name]++
		for _, r := range s.regsByClock[c.Name] {
			if r.Enable.Width != 0 && rtl.Eval(r.Enable, s) == 0 {
				continue
			}
			var v uint64
			if r.Reset.Width != 0 && rtl.Eval(r.Reset, s) != 0 {
				v = r.Init
			} else {
				v = rtl.Eval(r.Next, s)
			}
			s.staged = append(s.staged, regUpdate{s.sigIndex[r.Sig], v})
		}
		for _, mw := range s.memWrites[c.Name] {
			if rtl.Eval(mw.port.Enable, s) == 0 {
				continue
			}
			addr := int(rtl.Eval(mw.port.Addr, s)) % mw.mem.Depth
			s.stagedM = append(s.stagedM, memUpdate{
				mem: mw.mem, addr: addr, val: rtl.Eval(mw.port.Data, s),
			})
		}
	}
	for _, u := range s.staged {
		s.vals[u.idx] = u.val
	}
	for _, u := range s.stagedM {
		s.mems[u.mem][u.addr] = u.val
	}
	s.tick++
	s.settle()
}

// Run advances n ticks.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Tick()
	}
}

// RunUntil advances until cond returns true or limit ticks elapse; it
// returns the number of ticks advanced and whether cond was met.
func (s *Simulator) RunUntil(cond func() bool, limit int) (int, bool) {
	for i := 0; i < limit; i++ {
		if cond() {
			return i, true
		}
		s.Tick()
	}
	return limit, cond()
}

// Ticks returns the number of ticks elapsed since construction.
func (s *Simulator) Ticks() uint64 { return s.tick }

// Cycles returns the number of committed rising edges of a clock domain
// (gated edges are not counted, which is exactly the "design time" a
// paused design does not experience).
func (s *Simulator) Cycles(domain string) uint64 { return s.cycles[domain] }

// Lookup finds a signal by flat name.
func (s *Simulator) Lookup(name string) *rtl.Signal { return s.byName[name] }

// Peek reads any signal by flat name.
func (s *Simulator) Peek(name string) (uint64, error) {
	sig := s.byName[name]
	if sig == nil {
		return 0, fmt.Errorf("sim: no signal %q", name)
	}
	return s.vals[s.sigIndex[sig]], nil
}

// Poke writes an input port or register by flat name. Wires are rejected:
// they are functions of state, so forcing them would be overwritten by the
// next settle, which is also true on a real FPGA where only LUT/FF/BRAM
// state is writable through configuration.
func (s *Simulator) Poke(name string, v uint64) error {
	sig := s.byName[name]
	if sig == nil {
		return fmt.Errorf("sim: no signal %q", name)
	}
	if sig.Kind == rtl.KindWire || sig.Kind == rtl.KindOutput {
		return fmt.Errorf("sim: cannot force combinational signal %q", name)
	}
	s.vals[s.sigIndex[sig]] = rtl.Truncate(v, sig.Width)
	s.settle()
	return nil
}

// PeekMem reads one word of a memory by flat name.
func (s *Simulator) PeekMem(name string, addr int) (uint64, error) {
	mem := s.findMem(name)
	if mem == nil {
		return 0, fmt.Errorf("sim: no memory %q", name)
	}
	if addr < 0 || addr >= mem.Depth {
		return 0, fmt.Errorf("sim: memory %q: address %d out of range", name, addr)
	}
	return s.mems[mem][addr], nil
}

// PokeMem writes one word of a memory by flat name.
func (s *Simulator) PokeMem(name string, addr int, v uint64) error {
	mem := s.findMem(name)
	if mem == nil {
		return fmt.Errorf("sim: no memory %q", name)
	}
	if addr < 0 || addr >= mem.Depth {
		return fmt.Errorf("sim: memory %q: address %d out of range", name, addr)
	}
	s.mems[mem][addr] = rtl.Truncate(v, mem.Width)
	s.settle()
	return nil
}

func (s *Simulator) findMem(name string) *rtl.Memory {
	for _, m := range s.Flat.Memories {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Settle recomputes combinational signals; needed after batched direct
// state manipulation through State().
func (s *Simulator) Settle() { s.settle() }
