// Package sim is a cycle-accurate, multi-clock-domain simulator for
// elaborated (flat) RTL designs.
//
// The simulator advances in ticks. Each clock domain has a period and
// phase measured in ticks; a domain "rises" on ticks where
// (tick-phase) mod period == 0. A tick proceeds in three steps:
//
//  1. for every rising and enabled domain, compute register next-values
//     and memory writes against the settled state (every public mutation
//     path leaves the design settled, so no settle is needed on entry),
//  2. commit the staged updates,
//  3. re-settle combinational logic downstream of the changed state.
//
// Two evaluation engines implement this contract. The interpreter walks
// rtl.Expr trees through rtl.Eval and re-settles everything; it is the
// reference semantics. The compiled engine (the default) lowers every
// expression to bytecode with pre-resolved value-array slots at New()
// time and settles incrementally: only assigns in the dirty fanout cone
// of actually-changed state are re-evaluated, in levelized order, with
// optional goroutine sharding of wide levels (see compile.go and
// dirty.go). The two engines are held bit-identical by the differential
// tests in diff_test.go.
//
// Clock gating is first-class: a domain may be gated by a combinational
// signal of the design itself (the Debug Controller's clock enable), which
// models the glitch-free BUFGCE-style primitives Zoomie relies on, or
// force-gated from the host, which models the configuration controller
// stopping a clock.
package sim

import (
	"fmt"
	"os"
	"sort"
	"strconv"

	"zoomie/internal/rtl"
)

// ClockSpec describes one clock domain.
type ClockSpec struct {
	Name   string
	Period int // in ticks, >= 1
	Phase  int // tick offset of the first rising edge
}

// Engine selects the expression evaluation engine.
type Engine int

const (
	// EngineCompiled lowers expressions to bytecode at New() time and
	// settles incrementally. The default.
	EngineCompiled Engine = iota
	// EngineInterp tree-walks rtl.Eval and re-settles everything every
	// tick. The reference semantics; keep it for debugging suspected
	// engine bugs and for differential testing.
	EngineInterp
)

// Options configures a Simulator's evaluation strategy.
type Options struct {
	Engine Engine
	// FullSettle disables dirty-set incremental settling on the compiled
	// engine: every tick re-evaluates every assign (the -simfull escape
	// hatch for debugging suspected incremental-settling bugs).
	FullSettle bool
	// Shards > 1 enables cone-parallel settling: levels with at least
	// minParallelLevel dirty assigns are evaluated across this many
	// goroutines. Only meaningful with the compiled engine.
	Shards int
}

// DefaultOptions are the options New uses. They are initialised from the
// environment (ZOOMIE_SIM_ENGINE=interp, ZOOMIE_SIM_FULL=1,
// ZOOMIE_SIM_SHARDS=n) and may be overridden programmatically, e.g. by
// cmd/zbench's -simengine/-simfull/-simshards flags.
var DefaultOptions = optionsFromEnv()

func optionsFromEnv() Options {
	var o Options
	if os.Getenv("ZOOMIE_SIM_ENGINE") == "interp" {
		o.Engine = EngineInterp
	}
	if os.Getenv("ZOOMIE_SIM_FULL") == "1" {
		o.FullSettle = true
	}
	if n, err := strconv.Atoi(os.Getenv("ZOOMIE_SIM_SHARDS")); err == nil && n > 1 {
		o.Shards = n
	}
	return o
}

// Simulator executes a flat design.
type Simulator struct {
	Flat   *rtl.Flat
	clocks []ClockSpec

	sigIndex map[*rtl.Signal]int
	byName   map[string]*rtl.Signal
	vals     []uint64

	order []rtl.Assign // levelized combinational order (interpreter engine)

	mems      map[*rtl.Memory][]uint64
	memByName map[string]*rtl.Memory

	regsByClock map[string][]*rtl.Register
	memWrites   map[string][]memWrite

	// gates maps a domain name to an optional in-design 1-bit gate signal;
	// hostGate force-disables a domain regardless of the in-design gate.
	gates    map[string]*rtl.Signal
	hostGate map[string]bool

	tick    uint64
	cycles  map[string]uint64 // completed rising edges per domain
	staged  []regUpdate
	stagedM []memUpdate

	// Commit-hook state (see hook.go). hookRegs/hookMems are scratch
	// delta buffers reused across ticks; memIdx lazily maps memories to
	// stable ids for the interpreter engine.
	hook     CommitHook
	hookRegs []RegDelta
	hookMems []MemDelta
	memIdx   map[*rtl.Memory]int32

	// Compiled engine state (nil/zero when running the interpreter).
	comp       *compiled
	dirty      *dirtyState // nil when fullSettle
	fullSettle bool
	shards     int
	stacks     [][]uint64 // per-shard eval stacks
	changed    [][]int32  // per-shard changed-slot scratch
	stagedC    []cMemUpdate
}

type memWrite struct {
	mem  *rtl.Memory
	port rtl.MemoryWritePort
}

type regUpdate struct {
	idx int
	val uint64
}

type memUpdate struct {
	mem  *rtl.Memory
	addr int
	val  uint64
}

// New builds a simulator for the flat design with the given clock domains
// using DefaultOptions. Every domain referenced by a register must be
// listed.
func New(f *rtl.Flat, clocks []ClockSpec) (*Simulator, error) {
	return NewWithOptions(f, clocks, DefaultOptions)
}

// NewWithOptions builds a simulator with an explicit engine selection.
func NewWithOptions(f *rtl.Flat, clocks []ClockSpec, opts Options) (*Simulator, error) {
	s := &Simulator{
		Flat:        f,
		clocks:      append([]ClockSpec(nil), clocks...),
		sigIndex:    make(map[*rtl.Signal]int, len(f.Signals)),
		byName:      make(map[string]*rtl.Signal, len(f.Signals)),
		mems:        make(map[*rtl.Memory][]uint64, len(f.Memories)),
		memByName:   make(map[string]*rtl.Memory, len(f.Memories)),
		regsByClock: make(map[string][]*rtl.Register),
		memWrites:   make(map[string][]memWrite),
		gates:       make(map[string]*rtl.Signal),
		hostGate:    make(map[string]bool),
		cycles:      make(map[string]uint64),
	}
	known := make(map[string]bool)
	for _, c := range s.clocks {
		if c.Period < 1 {
			return nil, fmt.Errorf("sim: clock %q: period must be >= 1", c.Name)
		}
		if known[c.Name] {
			return nil, fmt.Errorf("sim: duplicate clock %q", c.Name)
		}
		known[c.Name] = true
	}
	for _, s2 := range f.Signals {
		s.sigIndex[s2] = len(s.vals)
		s.byName[s2.Name] = s2
		s.vals = append(s.vals, 0)
	}
	for _, r := range f.Registers {
		if !known[r.Clock] {
			return nil, fmt.Errorf("sim: register %q uses undeclared clock %q", r.Sig.Name, r.Clock)
		}
		s.regsByClock[r.Clock] = append(s.regsByClock[r.Clock], r)
		s.vals[s.sigIndex[r.Sig]] = r.Init
	}
	for _, mem := range f.Memories {
		data := make([]uint64, mem.Depth)
		for k, v := range mem.Init {
			data[k] = rtl.Truncate(v, mem.Width)
		}
		s.mems[mem] = data
		s.memByName[mem.Name] = mem
		for _, w := range mem.Writes {
			if !known[w.Clock] {
				return nil, fmt.Errorf("sim: memory %q uses undeclared clock %q", mem.Name, w.Clock)
			}
			s.memWrites[w.Clock] = append(s.memWrites[w.Clock], memWrite{mem, w})
		}
	}
	order, level, err := levelize(f)
	if err != nil {
		return nil, err
	}
	s.order = make([]rtl.Assign, len(order))
	for i, oi := range order {
		s.order[i] = f.Assigns[oi]
	}
	if opts.Engine == EngineCompiled {
		s.comp = compileProgram(f, s.sigIndex, s.mems, order, level)
		s.fullSettle = opts.FullSettle
		if !s.fullSettle {
			s.dirty = newDirtyState(f, s.comp, s.sigIndex, order, level)
		}
		s.shards = opts.Shards
		if s.shards < 1 {
			s.shards = 1
		}
		if s.shards > 1 {
			s.stacks = make([][]uint64, s.shards)
			s.changed = make([][]int32, s.shards)
			for i := range s.stacks {
				s.stacks[i] = make([]uint64, s.comp.maxStack)
			}
		}
	}
	s.settle()
	return s, nil
}

// levelize topologically sorts the combinational assignments so each is
// evaluated after all assignments it reads from. It returns the
// evaluation order as indices into f.Assigns plus each assignment's
// dependency level (0 = reads state and constants only). Registers,
// inputs and memory contents are state and impose no ordering.
func levelize(f *rtl.Flat) (order, level []int, err error) {
	producer := make(map[*rtl.Signal]int) // signal -> assign index
	for i, a := range f.Assigns {
		producer[a.Dst] = i
	}
	n := len(f.Assigns)
	deps := make([][]int, n)  // deps[i] = assigns that must run before i
	indeg := make([]int, n)   // number of unmet deps
	users := make([][]int, n) // reverse edges
	for i, a := range f.Assigns {
		seen := make(map[int]bool)
		a.Src.VisitSignals(func(sig *rtl.Signal) {
			if sig.Kind == rtl.KindWire || sig.Kind == rtl.KindOutput {
				if p, ok := producer[sig]; ok && !seen[p] {
					seen[p] = true
					deps[i] = append(deps[i], p)
				}
			}
		})
		indeg[i] = len(deps[i])
		for _, p := range deps[i] {
			users[p] = append(users[p], i)
		}
	}
	level = make([]int, n)
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order = make([]int, 0, n)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, u := range users[i] {
			if level[i]+1 > level[u] {
				level[u] = level[i] + 1
			}
			indeg[u]--
			if indeg[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	if len(order) != n {
		var cyc []string
		for i := 0; i < n && len(cyc) < 8; i++ {
			if indeg[i] > 0 {
				cyc = append(cyc, f.Assigns[i].Dst.Name)
			}
		}
		sort.Strings(cyc)
		return nil, nil, fmt.Errorf("sim: combinational loop involving %v", cyc)
	}
	return order, level, nil
}

// SignalValue implements rtl.Env.
func (s *Simulator) SignalValue(sig *rtl.Signal) uint64 { return s.vals[s.sigIndex[sig]] }

// MemValue implements rtl.Env. Addresses wrap modulo the depth, matching
// the power-of-two truncation of real block RAM address ports.
func (s *Simulator) MemValue(mem *rtl.Memory, addr uint64) uint64 {
	data := s.mems[mem]
	return data[addr%uint64(len(data))]
}

// settle performs a full combinational settle with the active engine.
func (s *Simulator) settle() {
	if s.comp != nil {
		s.settleFullCompiled()
		return
	}
	for _, a := range s.order {
		s.vals[s.sigIndex[a.Dst]] = rtl.Eval(a.Src, s)
	}
}

// GateClock attaches an in-design 1-bit signal as the clock enable of a
// domain. When the signal settles to 0 in a tick, registers and memory
// writes of that domain hold their values for that tick.
func (s *Simulator) GateClock(domain, signalName string) error {
	sig := s.byName[signalName]
	if sig == nil {
		return fmt.Errorf("sim: no signal %q", signalName)
	}
	if sig.Width != 1 {
		return fmt.Errorf("sim: clock gate %q must be 1 bit", signalName)
	}
	s.gates[domain] = sig
	return nil
}

// SetHostGate force-gates (enabled=false) or releases a clock domain from
// the host side, independent of any in-design gate. This models the
// configuration microcontroller stopping the clock.
func (s *Simulator) SetHostGate(domain string, enabled bool) {
	s.hostGate[domain] = !enabled
}

// domainEnabled reports whether a domain's registers update this tick,
// assuming the domain rises.
func (s *Simulator) domainEnabled(domain string) bool {
	if s.hostGate[domain] {
		return false
	}
	if g, ok := s.gates[domain]; ok {
		return s.vals[s.sigIndex[g]] != 0
	}
	return true
}

// rises reports whether the clock domain has a rising edge at tick t.
func rises(c ClockSpec, t uint64) bool {
	pt := int64(t) - int64(c.Phase)
	return pt >= 0 && pt%int64(c.Period) == 0
}

// Tick advances the simulation by one tick. The design is settled on
// entry — New, Poke, PokeMem, Restore, Settle and the previous Tick all
// leave it settled — so register/memory update functions evaluate
// directly against current state.
func (s *Simulator) Tick() {
	if s.comp != nil {
		s.tickCompiled()
		return
	}
	s.staged = s.staged[:0]
	s.stagedM = s.stagedM[:0]
	for _, c := range s.clocks {
		if !rises(c, s.tick) {
			continue
		}
		if !s.domainEnabled(c.Name) {
			continue
		}
		s.cycles[c.Name]++
		for _, r := range s.regsByClock[c.Name] {
			if r.Enable.Width != 0 && rtl.Eval(r.Enable, s) == 0 {
				continue
			}
			var v uint64
			if r.Reset.Width != 0 && rtl.Eval(r.Reset, s) != 0 {
				v = r.Init
			} else {
				v = rtl.Eval(r.Next, s)
			}
			s.staged = append(s.staged, regUpdate{s.sigIndex[r.Sig], v})
		}
		for _, mw := range s.memWrites[c.Name] {
			if rtl.Eval(mw.port.Enable, s) == 0 {
				continue
			}
			addr := int(rtl.Eval(mw.port.Addr, s) % uint64(mw.mem.Depth))
			s.stagedM = append(s.stagedM, memUpdate{
				mem: mw.mem, addr: addr, val: rtl.Eval(mw.port.Data, s),
			})
		}
	}
	if hk := s.hook; hk != nil {
		// Change-detecting commit, matching the compiled engine, so the
		// hook sees only real deltas on either engine.
		s.hookRegs = s.hookRegs[:0]
		s.hookMems = s.hookMems[:0]
		for _, u := range s.staged {
			if s.vals[u.idx] != u.val {
				s.vals[u.idx] = u.val
				s.hookRegs = append(s.hookRegs, RegDelta{Slot: int32(u.idx), Val: u.val})
			}
		}
		for _, u := range s.stagedM {
			data := s.mems[u.mem]
			if data[u.addr] != u.val {
				data[u.addr] = u.val
				s.hookMems = append(s.hookMems, MemDelta{Mem: s.hookMemID(u.mem), Addr: int32(u.addr), Val: u.val})
			}
		}
		s.tick++
		s.settle()
		hk.OnTick(s.tick, s.hookRegs, s.hookMems)
		return
	}
	for _, u := range s.staged {
		s.vals[u.idx] = u.val
	}
	for _, u := range s.stagedM {
		s.mems[u.mem][u.addr] = u.val
	}
	s.tick++
	s.settle()
}

// evalc executes one compiled expression on the serial scratch stack.
func (s *Simulator) evalc(x xref) uint64 {
	return runCode(s.comp.code[x.start:x.end], s.comp.stack, s.vals, s.comp.memData)
}

// tickCompiled is Tick on the compiled engine: bytecode evaluation of the
// update functions, change-detecting commit, and incremental settling of
// the dirty fanout cone.
func (s *Simulator) tickCompiled() {
	cp := s.comp
	s.staged = s.staged[:0]
	s.stagedC = s.stagedC[:0]
	for _, c := range s.clocks {
		if !rises(c, s.tick) {
			continue
		}
		if !s.domainEnabled(c.Name) {
			continue
		}
		s.cycles[c.Name]++
		regs := cp.regs[c.Name]
		for i := range regs {
			r := &regs[i]
			if r.hasEnable && s.evalc(r.enable) == 0 {
				continue
			}
			var v uint64
			if r.hasReset && s.evalc(r.reset) != 0 {
				v = r.init
			} else {
				v = s.evalc(r.next)
			}
			s.staged = append(s.staged, regUpdate{int(r.dst), v})
		}
		memw := cp.memw[c.Name]
		for i := range memw {
			w := &memw[i]
			if s.evalc(w.enable) == 0 {
				continue
			}
			addr := int32(s.evalc(w.addr) % w.depth)
			s.stagedC = append(s.stagedC, cMemUpdate{mem: w.mem, addr: addr, val: s.evalc(w.data)})
		}
	}
	incr := s.dirty != nil
	hk := s.hook
	if hk != nil {
		s.hookRegs = s.hookRegs[:0]
		s.hookMems = s.hookMems[:0]
	}
	for _, u := range s.staged {
		if s.vals[u.idx] != u.val {
			s.vals[u.idx] = u.val
			if incr {
				s.dirty.markSig(u.idx)
			}
			if hk != nil {
				s.hookRegs = append(s.hookRegs, RegDelta{Slot: int32(u.idx), Val: u.val})
			}
		}
	}
	for _, u := range s.stagedC {
		d := cp.memData[u.mem]
		if d[u.addr] != u.val {
			d[u.addr] = u.val
			if incr {
				s.dirty.markMem(int(u.mem))
			}
			if hk != nil {
				s.hookMems = append(s.hookMems, MemDelta{Mem: u.mem, Addr: u.addr, Val: u.val})
			}
		}
	}
	s.tick++
	if incr {
		s.settleDirty()
	} else {
		s.settleFullCompiled()
	}
	if hk != nil {
		hk.OnTick(s.tick, s.hookRegs, s.hookMems)
	}
}

// Run advances n ticks.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Tick()
	}
}

// RunUntil advances until cond returns true or limit ticks elapse; it
// returns the number of ticks advanced and whether cond was met.
func (s *Simulator) RunUntil(cond func() bool, limit int) (int, bool) {
	for i := 0; i < limit; i++ {
		if cond() {
			return i, true
		}
		s.Tick()
	}
	return limit, cond()
}

// Ticks returns the number of ticks elapsed since construction.
func (s *Simulator) Ticks() uint64 { return s.tick }

// Cycles returns the number of committed rising edges of a clock domain
// (gated edges are not counted, which is exactly the "design time" a
// paused design does not experience).
func (s *Simulator) Cycles(domain string) uint64 { return s.cycles[domain] }

// Lookup finds a signal by flat name.
func (s *Simulator) Lookup(name string) *rtl.Signal { return s.byName[name] }

// Peek reads any signal by flat name.
func (s *Simulator) Peek(name string) (uint64, error) {
	sig := s.byName[name]
	if sig == nil {
		return 0, fmt.Errorf("sim: no signal %q", name)
	}
	return s.vals[s.sigIndex[sig]], nil
}

// Poke writes an input port or register by flat name. Wires are rejected:
// they are functions of state, so forcing them would be overwritten by the
// next settle, which is also true on a real FPGA where only LUT/FF/BRAM
// state is writable through configuration.
func (s *Simulator) Poke(name string, v uint64) error {
	sig := s.byName[name]
	if sig == nil {
		return fmt.Errorf("sim: no signal %q", name)
	}
	if sig.Kind == rtl.KindWire || sig.Kind == rtl.KindOutput {
		return fmt.Errorf("sim: cannot force combinational signal %q", name)
	}
	idx := s.sigIndex[sig]
	nv := rtl.Truncate(v, sig.Width)
	changed := s.vals[idx] != nv
	if s.dirty != nil {
		if changed {
			s.vals[idx] = nv
			s.dirty.markSig(idx)
			s.settleDirty()
		}
	} else {
		s.vals[idx] = nv
		s.settle()
	}
	if changed && s.hook != nil {
		s.hookRegs = append(s.hookRegs[:0], RegDelta{Slot: int32(idx), Val: nv})
		s.hook.OnHostWrite(s.hookRegs, nil)
	}
	return nil
}

// PeekMem reads one word of a memory by flat name.
func (s *Simulator) PeekMem(name string, addr int) (uint64, error) {
	mem := s.findMem(name)
	if mem == nil {
		return 0, fmt.Errorf("sim: no memory %q", name)
	}
	if addr < 0 || addr >= mem.Depth {
		return 0, fmt.Errorf("sim: memory %q: address %d out of range", name, addr)
	}
	return s.mems[mem][addr], nil
}

// PokeMem writes one word of a memory by flat name.
func (s *Simulator) PokeMem(name string, addr int, v uint64) error {
	mem := s.findMem(name)
	if mem == nil {
		return fmt.Errorf("sim: no memory %q", name)
	}
	if addr < 0 || addr >= mem.Depth {
		return fmt.Errorf("sim: memory %q: address %d out of range", name, addr)
	}
	nv := rtl.Truncate(v, mem.Width)
	data := s.mems[mem]
	changed := data[addr] != nv
	if s.dirty != nil {
		if changed {
			data[addr] = nv
			s.dirty.markMem(s.comp.memID[mem])
			s.settleDirty()
		}
	} else {
		data[addr] = nv
		s.settle()
	}
	if changed && s.hook != nil {
		s.hookMems = append(s.hookMems[:0], MemDelta{Mem: s.hookMemID(mem), Addr: int32(addr), Val: nv})
		s.hook.OnHostWrite(nil, s.hookMems)
	}
	return nil
}

func (s *Simulator) findMem(name string) *rtl.Memory {
	return s.memByName[name]
}

// Settle recomputes all combinational signals; needed after batched
// direct state manipulation (e.g. the board's GSR sweep).
func (s *Simulator) Settle() { s.settle() }
