package sim

import (
	"fmt"
	"strings"
)

// Tracer records the values of selected signals every tick, producing the
// kind of waveform evidence used in the paper's Figure 3 discussion. It is
// deliberately small: Zoomie's thesis is that full-visibility readback
// replaces trace-everything ILA debugging, so the tracer exists for tests
// and demos, not as the primary debug path.
type Tracer struct {
	sim     *Simulator
	signals []string
	rows    [][]uint64
}

// NewTracer watches the named signals of the simulator.
func NewTracer(s *Simulator, signals ...string) (*Tracer, error) {
	for _, n := range signals {
		if s.Lookup(n) == nil {
			return nil, fmt.Errorf("sim: tracer: no signal %q", n)
		}
	}
	return &Tracer{sim: s, signals: append([]string(nil), signals...)}, nil
}

// Sample records the current value of every watched signal.
func (t *Tracer) Sample() {
	row := make([]uint64, len(t.signals))
	for i, n := range t.signals {
		row[i], _ = t.sim.Peek(n)
	}
	t.rows = append(t.rows, row)
}

// Step advances the simulator one tick and samples.
func (t *Tracer) Step() {
	t.sim.Tick()
	t.Sample()
}

// Len returns the number of samples recorded.
func (t *Tracer) Len() int { return len(t.rows) }

// Value returns the recorded value of signal name at sample index i.
func (t *Tracer) Value(i int, name string) (uint64, bool) {
	for j, n := range t.signals {
		if n == name {
			if i < 0 || i >= len(t.rows) {
				return 0, false
			}
			return t.rows[i][j], true
		}
	}
	return 0, false
}

// Render draws an ASCII waveform, one line per signal. Single-bit signals
// render as rails (▔ for 1 and ▁ for 0); wider signals render hex values.
func (t *Tracer) Render() string {
	var b strings.Builder
	width := 0
	for _, n := range t.signals {
		if len(n) > width {
			width = len(n)
		}
	}
	for j, n := range t.signals {
		fmt.Fprintf(&b, "%-*s ", width, n)
		sig := t.sim.Lookup(n)
		for i := range t.rows {
			v := t.rows[i][j]
			if sig.Width == 1 {
				if v != 0 {
					b.WriteString("▔▔")
				} else {
					b.WriteString("▁▁")
				}
			} else {
				fmt.Fprintf(&b, "%2x", v&0xff)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
