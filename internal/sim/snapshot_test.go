package sim

import (
	"testing"

	"zoomie/internal/rtl"
)

func snapshotTestModule() *rtl.Module {
	m := rtl.NewModule("snap")
	en := m.Input("en", 1)
	cnt := m.Reg("cnt", 16, "clk", 0)
	m.SetNext(cnt, rtl.Add(rtl.S(cnt), rtl.C(3, 16)))
	m.SetEnable(cnt, rtl.S(en))
	mem := m.Mem("scratch", 8, 8)
	mem.Write("clk", rtl.Slice(rtl.S(cnt), 2, 0), rtl.Slice(rtl.S(cnt), 7, 0), rtl.S(en))
	q := m.Output("q", 16)
	m.Connect(q, rtl.S(cnt))
	return m
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := newSim(t, snapshotTestModule(), oneClock)
	s.Poke("en", 1)
	s.Run(10)
	snap := s.Snapshot("clk")
	if snap.Cycle != 10 {
		t.Errorf("snapshot cycle = %d, want 10", snap.Cycle)
	}

	s.Run(25)
	after := s.Snapshot("clk")
	if snap.Equal(after) {
		t.Fatal("state did not advance")
	}

	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	restored := s.Snapshot("clk")
	if !snap.Equal(restored) {
		t.Errorf("restore mismatch, diff: %v", snap.Diff(restored))
	}
	// Replaying the same input schedule from the snapshot reproduces the
	// same state — the paper's replay-from-snapshot flow.
	s.Run(25)
	replayed := s.Snapshot("clk")
	if !after.Equal(replayed) {
		t.Errorf("replay diverged, diff: %v", after.Diff(replayed))
	}
}

func TestSnapshotRejectsUnknownState(t *testing.T) {
	s := newSim(t, snapshotTestModule(), oneClock)
	if err := s.Restore(&Snapshot{Regs: map[string]uint64{"nosuch": 1}}); err == nil {
		t.Error("unknown register accepted")
	}
	if err := s.Restore(&Snapshot{Mems: map[string][]uint64{"nosuch": {1}}}); err == nil {
		t.Error("unknown memory accepted")
	}
	if err := s.Restore(&Snapshot{Mems: map[string][]uint64{"scratch": {1, 2}}}); err == nil {
		t.Error("wrong-size memory accepted")
	}
}

func TestSnapshotDiff(t *testing.T) {
	s := newSim(t, snapshotTestModule(), oneClock)
	s.Poke("en", 1)
	a := s.Snapshot("clk")
	s.Run(1)
	b := s.Snapshot("clk")
	diff := a.Diff(b)
	if len(diff) == 0 {
		t.Fatal("diff empty after a cycle")
	}
	found := false
	for _, d := range diff {
		if d == "cnt" {
			found = true
		}
	}
	if !found {
		t.Errorf("diff %v does not mention cnt", diff)
	}
}

func TestStateNames(t *testing.T) {
	s := newSim(t, snapshotTestModule(), oneClock)
	regs, mems := s.StateNames()
	if len(regs) != 1 || regs[0] != "cnt" {
		t.Errorf("regs = %v", regs)
	}
	if len(mems) != 1 || mems[0] != "scratch" {
		t.Errorf("mems = %v", mems)
	}
}

func TestPartialRestoreLeavesOtherStateIntact(t *testing.T) {
	s := newSim(t, snapshotTestModule(), oneClock)
	s.Poke("en", 1)
	s.Run(5)
	memBefore, _ := s.PeekMem("scratch", 1)
	// Restore only the register, as a partial reconfiguration of a single
	// frame would.
	if err := s.Restore(&Snapshot{Regs: map[string]uint64{"cnt": 0}}); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("cnt"); v != 0 {
		t.Errorf("cnt = %d, want 0", v)
	}
	if v, _ := s.PeekMem("scratch", 1); v != memBefore {
		t.Errorf("partial restore clobbered memory: %d != %d", v, memBefore)
	}
}
