package sim

import (
	"fmt"

	"zoomie/internal/rtl"
)

// The compiled engine lowers every combinational expression of a flat
// design — assign right-hand sides, register next/enable/reset functions
// and memory write-port address/data/enable functions — into one flat
// bytecode stream executed by a small stack machine. Signal reads become
// direct loads from the simulator's value array through pre-resolved slot
// indices and memory reads become direct indexing of the backing word
// slices, so the hot loop has no interface dispatch, no map lookups and
// no AST recursion. Width truncation is pre-baked into the instructions
// as immediate masks.

// opcode is a bytecode operation of the compiled evaluation engine.
type opcode uint8

const (
	opConst   opcode = iota // push imm
	opLoad                  // push vals[a]
	opNot                   // tos = ^tos & imm
	opAnd                   // pop b; tos &= b
	opOr                    // pop b; tos |= b
	opXor                   // pop b; tos ^= b
	opAdd                   // pop b; tos = (tos + b) & imm
	opSub                   // pop b; tos = (tos - b) & imm
	opMul                   // pop b; tos = (tos * b) & imm
	opEq                    // pop b; tos = tos == b
	opNe                    // pop b; tos = tos != b
	opLt                    // pop b; tos = tos < b
	opLe                    // pop b; tos = tos <= b
	opShl                   // tos = (tos << a) & imm
	opShr                   // tos = tos >> a
	opMux                   // pop b, a; tos = tos != 0 ? a : b
	opSlice                 // tos = (tos >> a) & imm
	opConcat                // pop lo; tos = (tos << a | lo) & imm
	opRedOr                 // tos = tos != 0
	opRedAnd                // tos = tos == imm
	opMemRead               // d := mems[a]; tos = d[tos % len(d)] & imm
)

// instr is one bytecode instruction. a carries a value-array slot index
// (opLoad), a shift amount (opShl/opShr/opSlice/opConcat) or a memory id
// (opMemRead); imm carries a constant or a width mask.
type instr struct {
	op  opcode
	a   int32
	imm uint64
}

// xref addresses one compiled expression as a [start,end) window of the
// shared code array.
type xref struct{ start, end int32 }

// cAssign is a compiled combinational assignment: evaluate x, store to
// value-array slot dst.
type cAssign struct {
	x   xref
	dst int32
}

// cReg is a compiled register update function.
type cReg struct {
	next, enable, reset xref
	hasEnable, hasReset bool
	dst                 int32
	init                uint64
}

// cMemWrite is a compiled synchronous memory write port.
type cMemWrite struct {
	addr, data, enable xref
	mem                int32
	depth              uint64
}

// cMemUpdate is a staged memory write of the compiled engine.
type cMemUpdate struct {
	mem  int32
	addr int32
	val  uint64
}

// compiled is the bytecode form of a flat design.
type compiled struct {
	code     []instr
	assigns  []cAssign         // in levelized order
	byLevel  [][]int32         // level -> indices into assigns
	regs     map[string][]cReg // clock domain -> registers
	memw     map[string][]cMemWrite
	memData  [][]uint64          // memory id -> backing words (aliases Simulator.mems)
	memID    map[*rtl.Memory]int // memory -> id
	stack    []uint64            // serial-path scratch stack, len == maxStack
	maxStack int
}

type compiler struct {
	sigIndex map[*rtl.Signal]int
	memIndex map[*rtl.Memory]int
	code     []instr
	maxStack int
}

func (c *compiler) emit(op opcode, a int32, imm uint64) {
	c.code = append(c.code, instr{op: op, a: a, imm: imm})
}

// expr lowers one expression tree and returns its code window.
func (c *compiler) expr(e rtl.Expr) xref {
	start := int32(len(c.code))
	c.lower(e)
	if d := e.StackDepth(); d > c.maxStack {
		c.maxStack = d
	}
	return xref{start: start, end: int32(len(c.code))}
}

// lower emits code for e in post-order. The emitted semantics mirror
// rtl.Eval exactly; the differential tests in diff_test.go hold the two
// engines to bit-identical behaviour.
func (c *compiler) lower(e rtl.Expr) {
	if want := rtl.OpArity(e.Op); want < 0 || len(e.Args) != want {
		panic(fmt.Sprintf("sim: compile: op %v with %d operands (want %d)", e.Op, len(e.Args), want))
	}
	switch e.Op {
	case rtl.OpConst:
		c.emit(opConst, 0, e.Val)
	case rtl.OpSig:
		c.emit(opLoad, int32(c.sigIndex[e.Sig]), 0)
	case rtl.OpNot:
		c.lower(e.Args[0])
		c.emit(opNot, 0, rtl.Mask(e.Width))
	case rtl.OpAnd, rtl.OpOr, rtl.OpXor:
		// Operands are width-matched and already truncated, so the result
		// needs no mask.
		c.lower(e.Args[0])
		c.lower(e.Args[1])
		c.emit(map[rtl.Op]opcode{rtl.OpAnd: opAnd, rtl.OpOr: opOr, rtl.OpXor: opXor}[e.Op], 0, 0)
	case rtl.OpAdd, rtl.OpSub, rtl.OpMul:
		c.lower(e.Args[0])
		c.lower(e.Args[1])
		c.emit(map[rtl.Op]opcode{rtl.OpAdd: opAdd, rtl.OpSub: opSub, rtl.OpMul: opMul}[e.Op],
			0, rtl.Mask(e.Width))
	case rtl.OpEq, rtl.OpNe, rtl.OpLt, rtl.OpLe:
		c.lower(e.Args[0])
		c.lower(e.Args[1])
		c.emit(map[rtl.Op]opcode{rtl.OpEq: opEq, rtl.OpNe: opNe, rtl.OpLt: opLt, rtl.OpLe: opLe}[e.Op], 0, 0)
	case rtl.OpShl:
		if e.Lo >= e.Width {
			c.emit(opConst, 0, 0)
			return
		}
		c.lower(e.Args[0])
		c.emit(opShl, int32(e.Lo), rtl.Mask(e.Width))
	case rtl.OpShr:
		if e.Lo >= e.Width {
			c.emit(opConst, 0, 0)
			return
		}
		c.lower(e.Args[0])
		c.emit(opShr, int32(e.Lo), 0)
	case rtl.OpMux:
		// Eager on both arms; expressions are pure, so this is
		// observationally identical to the interpreter's lazy select.
		c.lower(e.Args[0])
		c.lower(e.Args[1])
		c.lower(e.Args[2])
		c.emit(opMux, 0, 0)
	case rtl.OpSlice:
		c.lower(e.Args[0])
		c.emit(opSlice, int32(e.Lo), rtl.Mask(e.Width))
	case rtl.OpConcat:
		c.lower(e.Args[0])
		c.lower(e.Args[1])
		c.emit(opConcat, int32(e.Args[1].Width), rtl.Mask(e.Width))
	case rtl.OpRedOr:
		c.lower(e.Args[0])
		c.emit(opRedOr, 0, 0)
	case rtl.OpRedAnd:
		c.lower(e.Args[0])
		c.emit(opRedAnd, 0, rtl.Mask(e.Args[0].Width))
	case rtl.OpMemRead:
		c.lower(e.Args[0])
		c.emit(opMemRead, int32(c.memIndex[e.Mem]), rtl.Mask(e.Width))
	default:
		panic(fmt.Sprintf("sim: compile: unknown op %v", e.Op))
	}
}

// compileProgram lowers the whole flat design. order and level come from
// levelize: order is the topological evaluation order of f.Assigns and
// level[i] the dependency depth of f.Assigns[i].
func compileProgram(f *rtl.Flat, sigIndex map[*rtl.Signal]int,
	mems map[*rtl.Memory][]uint64, order, level []int) *compiled {

	c := &compiler{
		sigIndex: sigIndex,
		memIndex: make(map[*rtl.Memory]int, len(f.Memories)),
	}
	cp := &compiled{
		regs:    make(map[string][]cReg),
		memw:    make(map[string][]cMemWrite),
		memData: make([][]uint64, len(f.Memories)),
	}
	for i, m := range f.Memories {
		c.memIndex[m] = i
		cp.memData[i] = mems[m]
	}
	cp.memID = c.memIndex

	numLevels := 0
	for _, oi := range order {
		if level[oi]+1 > numLevels {
			numLevels = level[oi] + 1
		}
	}
	cp.byLevel = make([][]int32, numLevels)
	cp.assigns = make([]cAssign, 0, len(order))
	for k, oi := range order {
		a := f.Assigns[oi]
		cp.assigns = append(cp.assigns, cAssign{
			x:   c.expr(a.Src),
			dst: int32(sigIndex[a.Dst]),
		})
		cp.byLevel[level[oi]] = append(cp.byLevel[level[oi]], int32(k))
	}

	for _, r := range f.Registers {
		cr := cReg{
			next: c.expr(r.Next),
			dst:  int32(sigIndex[r.Sig]),
			init: r.Init,
		}
		if r.Enable.Width != 0 {
			cr.enable = c.expr(r.Enable)
			cr.hasEnable = true
		}
		if r.Reset.Width != 0 {
			cr.reset = c.expr(r.Reset)
			cr.hasReset = true
		}
		cp.regs[r.Clock] = append(cp.regs[r.Clock], cr)
	}
	for _, m := range f.Memories {
		for _, w := range m.Writes {
			cp.memw[w.Clock] = append(cp.memw[w.Clock], cMemWrite{
				addr:   c.expr(w.Addr),
				data:   c.expr(w.Data),
				enable: c.expr(w.Enable),
				mem:    int32(c.memIndex[m]),
				depth:  uint64(m.Depth),
			})
		}
	}

	cp.code = c.code
	cp.maxStack = c.maxStack
	if cp.maxStack == 0 {
		cp.maxStack = 1
	}
	cp.stack = make([]uint64, cp.maxStack)
	return cp
}

// runCode executes one compiled expression window and returns its value.
// stack must have room for the program's maxStack operands; vals is the
// simulator's signal value array and mems the memory backing slices.
func runCode(code []instr, stack, vals []uint64, mems [][]uint64) uint64 {
	sp := 0
	for i := range code {
		ins := code[i]
		switch ins.op {
		case opConst:
			stack[sp] = ins.imm
			sp++
		case opLoad:
			stack[sp] = vals[ins.a]
			sp++
		case opNot:
			stack[sp-1] = ^stack[sp-1] & ins.imm
		case opAnd:
			sp--
			stack[sp-1] &= stack[sp]
		case opOr:
			sp--
			stack[sp-1] |= stack[sp]
		case opXor:
			sp--
			stack[sp-1] ^= stack[sp]
		case opAdd:
			sp--
			stack[sp-1] = (stack[sp-1] + stack[sp]) & ins.imm
		case opSub:
			sp--
			stack[sp-1] = (stack[sp-1] - stack[sp]) & ins.imm
		case opMul:
			sp--
			stack[sp-1] = (stack[sp-1] * stack[sp]) & ins.imm
		case opEq:
			sp--
			stack[sp-1] = b2u(stack[sp-1] == stack[sp])
		case opNe:
			sp--
			stack[sp-1] = b2u(stack[sp-1] != stack[sp])
		case opLt:
			sp--
			stack[sp-1] = b2u(stack[sp-1] < stack[sp])
		case opLe:
			sp--
			stack[sp-1] = b2u(stack[sp-1] <= stack[sp])
		case opShl:
			stack[sp-1] = (stack[sp-1] << uint(ins.a)) & ins.imm
		case opShr:
			stack[sp-1] >>= uint(ins.a)
		case opMux:
			sp -= 2
			if stack[sp-1] != 0 {
				stack[sp-1] = stack[sp]
			} else {
				stack[sp-1] = stack[sp+1]
			}
		case opSlice:
			stack[sp-1] = (stack[sp-1] >> uint(ins.a)) & ins.imm
		case opConcat:
			sp--
			stack[sp-1] = (stack[sp-1]<<uint(ins.a) | stack[sp]) & ins.imm
		case opRedOr:
			stack[sp-1] = b2u(stack[sp-1] != 0)
		case opRedAnd:
			stack[sp-1] = b2u(stack[sp-1] == ins.imm)
		case opMemRead:
			d := mems[ins.a]
			stack[sp-1] = d[stack[sp-1]%uint64(len(d))] & ins.imm
		}
	}
	return stack[sp-1]
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
