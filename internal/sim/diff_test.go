package sim_test

// Differential testing of the two evaluation engines: the interpreter is
// the reference semantics and the compiled engine (bytecode + dirty-set
// incremental settling, optionally cone-parallel) must be bit-identical
// to it on every signal, every memory word and every cycle counter after
// every tick — over all the paper's workload designs and over randomly
// generated designs exercising the full operator set (cf. the
// interpreter-guided differential-testing methodology in PAPERS.md).

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"zoomie/internal/gen"
	"zoomie/internal/rtl"
	"zoomie/internal/sim"
	"zoomie/internal/workloads"
)

// enginePair builds an interpreter (reference) and a compiled simulator
// over the same flat design.
func enginePair(t *testing.T, f *rtl.Flat, clocks []sim.ClockSpec, shards int) (ref, cmp *sim.Simulator) {
	t.Helper()
	ref, err := sim.NewWithOptions(f, clocks, sim.Options{Engine: sim.EngineInterp})
	if err != nil {
		t.Fatalf("interp engine: %v", err)
	}
	cmp, err = sim.NewWithOptions(f, clocks, sim.Options{Engine: sim.EngineCompiled, Shards: shards})
	if err != nil {
		t.Fatalf("compiled engine: %v", err)
	}
	return ref, cmp
}

// compareState asserts bit-identical signal, memory and cycle state.
func compareState(t *testing.T, f *rtl.Flat, clocks []sim.ClockSpec, ref, cmp *sim.Simulator, ctx string) {
	t.Helper()
	for _, sig := range f.Signals {
		rv, err1 := ref.Peek(sig.Name)
		cv, err2 := cmp.Peek(sig.Name)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: peek %q: %v / %v", ctx, sig.Name, err1, err2)
		}
		if rv != cv {
			t.Fatalf("%s: signal %q: interp=%#x compiled=%#x", ctx, sig.Name, rv, cv)
		}
	}
	for _, m := range f.Memories {
		for a := 0; a < m.Depth; a++ {
			rv, _ := ref.PeekMem(m.Name, a)
			cv, _ := cmp.PeekMem(m.Name, a)
			if rv != cv {
				t.Fatalf("%s: mem %s[%d]: interp=%#x compiled=%#x", ctx, m.Name, a, rv, cv)
			}
		}
	}
	for _, c := range clocks {
		if rc, cc := ref.Cycles(c.Name), cmp.Cycles(c.Name); rc != cc {
			t.Fatalf("%s: cycles(%s): interp=%d compiled=%d", ctx, c.Name, rc, cc)
		}
	}
	if ref.Ticks() != cmp.Ticks() {
		t.Fatalf("%s: ticks: interp=%d compiled=%d", ctx, ref.Ticks(), cmp.Ticks())
	}
}

// TestEnginesEquivalentWorkloads locksteps both engines over every
// workload design of the paper's evaluation.
func TestEnginesEquivalentWorkloads(t *testing.T) {
	cases := []struct {
		name   string
		design *rtl.Design
		clocks []sim.ClockSpec
		pokes  map[string]uint64
		shards int
		ticks  int
	}{
		{
			name:   "manycore16",
			design: workloads.ManycoreSoC(16),
			clocks: []sim.ClockSpec{{Name: workloads.Clk, Period: 1}},
			pokes:  map[string]uint64{"en": 1},
			shards: 4, // exercises cone-parallel settling (go test -race covers it)
			ticks:  150,
		},
		{
			name:   "cohort-buggy",
			design: workloads.CohortAccel(true),
			clocks: []sim.ClockSpec{{Name: workloads.Clk, Period: 1}},
			pokes:  map[string]uint64{"en": 1, "n_items": 10},
			ticks:  400,
		},
		{
			name:   "cohort-fixed",
			design: workloads.CohortAccel(false),
			clocks: []sim.ClockSpec{{Name: workloads.Clk, Period: 1}},
			pokes:  map[string]uint64{"en": 1, "n_items": 10},
			ticks:  400,
		},
		{
			name:   "exception-soc",
			design: workloads.ExceptionSoC(workloads.HangingExceptionProgram()),
			clocks: []sim.ClockSpec{{Name: workloads.Clk, Period: 1}},
			pokes:  map[string]uint64{"en": 1},
			ticks:  400,
		},
		{
			name:   "netstack",
			design: workloads.NetStack(),
			clocks: []sim.ClockSpec{
				{Name: workloads.NetClk, Period: 1},
				{Name: workloads.MacClk, Period: 1},
			},
			pokes: map[string]uint64{"en": 1, "engine_ready": 1},
			ticks: 300,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := rtl.Elaborate(tc.design)
			if err != nil {
				t.Fatal(err)
			}
			shards := tc.shards
			if shards == 0 {
				shards = 1
			}
			ref, cmp := enginePair(t, f, tc.clocks, shards)
			for name, v := range tc.pokes {
				if err := ref.Poke(name, v); err != nil {
					t.Fatal(err)
				}
				if err := cmp.Poke(name, v); err != nil {
					t.Fatal(err)
				}
			}
			compareState(t, f, tc.clocks, ref, cmp, "after pokes")
			for i := 0; i < tc.ticks; i++ {
				ref.Tick()
				cmp.Tick()
				compareState(t, f, tc.clocks, ref, cmp, fmt.Sprintf("tick %d", i))
			}
		})
	}
}

// TestEnginesEquivalentSnapshot round-trips a snapshot taken from the
// compiled engine through the interpreter and back.
func TestEnginesEquivalentSnapshot(t *testing.T) {
	f, err := rtl.Elaborate(workloads.CohortAccel(false))
	if err != nil {
		t.Fatal(err)
	}
	clocks := []sim.ClockSpec{{Name: workloads.Clk, Period: 1}}
	ref, cmp := enginePair(t, f, clocks, 1)
	for _, s := range []*sim.Simulator{ref, cmp} {
		s.Poke("en", 1)
		s.Poke("n_items", 25)
		s.Run(120)
	}
	snapC := cmp.Snapshot(workloads.Clk)
	snapR := ref.Snapshot(workloads.Clk)
	if !snapC.Equal(snapR) {
		t.Fatalf("snapshots diverge: %v", snapC.Diff(snapR))
	}
	// Cross-restore: state captured on one engine must settle to the same
	// observable state on the other.
	if err := ref.Restore(snapC); err != nil {
		t.Fatal(err)
	}
	if err := cmp.Restore(snapR); err != nil {
		t.Fatal(err)
	}
	compareState(t, f, clocks, ref, cmp, "after cross-restore")
}

// TestEnginesEquivalentRandom locksteps both engines over randomly
// generated designs (100 via testing/quick), with random pokes, memory
// pokes and host clock gating applied identically to both, comparing the
// full architectural and combinational state after every tick.
func TestEnginesEquivalentRandom(t *testing.T) {
	run := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gen.RandomDesign(r)
		design, clocks, inputs := g.RTL, g.Clocks, g.InputNames()
		f, err := rtl.Elaborate(design)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		shards := 1
		if r.Intn(3) == 0 {
			shards = 2
		}
		ref, cmp := enginePair(t, f, clocks, shards)
		for i := 0; i < 40; i++ {
			if r.Intn(3) == 0 {
				in, v := inputs[r.Intn(len(inputs))], r.Uint64()
				ref.Poke(in, v)
				cmp.Poke(in, v)
			}
			if len(f.Memories) > 0 && r.Intn(8) == 0 {
				m := f.Memories[r.Intn(len(f.Memories))]
				a, v := r.Intn(m.Depth), r.Uint64()
				ref.PokeMem(m.Name, a, v)
				cmp.PokeMem(m.Name, a, v)
			}
			if r.Intn(10) == 0 {
				d, en := clocks[r.Intn(len(clocks))].Name, r.Intn(2) == 0
				ref.SetHostGate(d, en)
				cmp.SetHostGate(d, en)
			}
			ref.Tick()
			cmp.Tick()
			compareState(t, f, clocks, ref, cmp, fmt.Sprintf("seed %d tick %d", seed, i))
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(20260805))}
	if err := quick.Check(run, cfg); err != nil {
		t.Fatal(err)
	}
}
