// Package timing performs static timing analysis over a placed and routed
// netlist: longest register-to-register paths under a delay model with
// per-LUT-level logic delay, distance- and congestion-dependent net delay,
// and a heavy penalty for SLR crossings. It reports achievable frequency
// and the top critical paths by endpoint, which lets the evaluation check
// the paper's claim that none of the top-10 paths lie in Zoomie-introduced
// logic (§5.2).
package timing

import (
	"fmt"
	"sort"
	"strings"

	"zoomie/internal/place"
	"zoomie/internal/route"
	"zoomie/internal/synth"
)

// DelayModel holds the timing constants in nanoseconds.
type DelayModel struct {
	LUTLevelNs   float64 // per LUT level of a cell's logic cone
	NetBaseNs    float64 // fixed per routed edge
	NetPerTileNs float64 // per tile of Manhattan distance
	SLRCrossNs   float64 // per chiplet crossing
	// CongestionK scales the quadratic congestion penalty applied to net
	// delays inside a partition with utilization u: factor 1 + K*u².
	CongestionK float64
	ClockSkewNs float64 // fixed setup margin
}

// DefaultDelayModel returns the UltraScale+-flavoured calibration used
// throughout the evaluation.
func DefaultDelayModel() DelayModel {
	return DelayModel{
		LUTLevelNs:   0.45,
		NetBaseNs:    0.20,
		NetPerTileNs: 0.011,
		SLRCrossNs:   0.80,
		CongestionK:  0.35,
		ClockSkewNs:  0.50,
	}
}

// Path is one timing path summary.
type Path struct {
	Endpoint  string  // cell the path terminates at
	DelayNs   float64 // total path delay
	Startcell string  // cell the dominant arrival came from ("" = input)
}

// Analysis is the result of timing a design.
type Analysis struct {
	CriticalNs float64
	FmaxMHz    float64
	TopPaths   []Path // sorted, worst first (up to 10)
	WorkUnits  int64
}

// MeetsFrequency reports whether the design closes timing at the given
// clock frequency.
func (a *Analysis) MeetsFrequency(mhz float64) bool {
	period := 1000.0 / mhz
	return a.CriticalNs <= period
}

// Analyze computes the longest paths of the routed design.
func Analyze(net *synth.ModuleNetlist, pl *place.Placement, rt *route.Result, dm DelayModel) (*Analysis, error) {
	// Collect flat cells and index them.
	type node struct {
		cell    synth.FlatCell
		arrival float64
		from    string
	}
	nodes := make(map[string]*node)
	net.Flatten(func(c synth.FlatCell) {
		nodes[c.Name] = &node{cell: c, arrival: -1}
	})

	congestion := func(cell string) float64 {
		part := pl.PartitionOf[cell]
		u := pl.Utilization[part]
		return 1 + dm.CongestionK*u*u
	}
	edgeDelay := func(e route.Edge) float64 {
		d := dm.NetBaseNs + dm.NetPerTileNs*float64(e.Dist) + dm.SLRCrossNs*float64(e.SLRHops)
		return d * congestion(e.To)
	}

	// Topological order over combinational cells: edges from comb producer
	// to consumer. State cells are path endpoints: their inputs terminate
	// paths; their outputs launch with arrival 0.
	indeg := make(map[string]int)
	users := make(map[string][]string)
	for _, e := range rt.Edges {
		prod := nodes[e.From]
		if prod == nil || prod.cell.IsState {
			continue
		}
		cons := nodes[e.To]
		if cons == nil || cons.cell.IsState {
			continue // handled as endpoint below
		}
		indeg[e.To]++
		users[e.From] = append(users[e.From], e.To)
	}
	var queue []string
	for name, n := range nodes {
		if !n.cell.IsState && indeg[name] == 0 {
			queue = append(queue, name)
		}
	}
	sort.Strings(queue) // determinism
	processed := 0
	comb := 0
	for _, n := range nodes {
		if !n.cell.IsState {
			comb++
		}
	}
	an := &Analysis{}
	// arrival(cell) = logicDelay(cell) + max over comb fanin (arrival + edge)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		n := nodes[name]
		best := 0.0
		from := ""
		for _, e := range rt.FaninEdges(name) {
			prod := nodes[e.From]
			if prod == nil {
				continue
			}
			d := edgeDelay(e)
			if !prod.cell.IsState {
				d += prod.arrival
			} else {
				d += dm.LUTLevelNs // clock-to-out of the launching register
			}
			if d > best {
				best, from = d, e.From
			}
			an.WorkUnits++
		}
		n.arrival = best + dm.LUTLevelNs*float64(n.cell.Levels)
		n.from = from
		processed++
		for _, u := range users[name] {
			indeg[u]--
			if indeg[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	if processed != comb {
		return nil, fmt.Errorf("timing: combinational cycle among %d unprocessed cells", comb-processed)
	}

	// Endpoints: state cells capture; compute their required arrival.
	var paths []Path
	for name, n := range nodes {
		if !n.cell.IsState {
			continue
		}
		worst := 0.0
		from := ""
		for _, e := range rt.FaninEdges(name) {
			prod := nodes[e.From]
			if prod == nil {
				continue
			}
			d := edgeDelay(e)
			if !prod.cell.IsState {
				d += prod.arrival
			} else {
				d += dm.LUTLevelNs
			}
			if d > worst {
				worst, from = d, e.From
			}
			an.WorkUnits++
		}
		if worst == 0 {
			continue
		}
		worst += dm.ClockSkewNs
		paths = append(paths, Path{Endpoint: name, DelayNs: worst, Startcell: from})
	}
	sort.Slice(paths, func(i, j int) bool {
		if paths[i].DelayNs != paths[j].DelayNs {
			return paths[i].DelayNs > paths[j].DelayNs
		}
		return paths[i].Endpoint < paths[j].Endpoint
	})
	if len(paths) > 0 {
		an.CriticalNs = paths[0].DelayNs
		an.FmaxMHz = 1000.0 / an.CriticalNs
	}
	if len(paths) > 10 {
		paths = paths[:10]
	}
	an.TopPaths = paths
	return an, nil
}

// PathsThrough reports how many of the top paths terminate in cells whose
// hierarchical name contains the given substring (e.g. the Debug
// Controller's instance prefix).
func (a *Analysis) PathsThrough(substr string) int {
	n := 0
	for _, p := range a.TopPaths {
		if strings.Contains(p.Endpoint, substr) || strings.Contains(p.Startcell, substr) {
			n++
		}
	}
	return n
}
