package timing

import (
	"testing"

	"zoomie/internal/fpga"
	"zoomie/internal/place"
	"zoomie/internal/route"
	"zoomie/internal/rtl"
	"zoomie/internal/synth"
	"zoomie/internal/workloads"
)

func analyze(t *testing.T, d *rtl.Design, specs []place.PartitionSpec) *Analysis {
	t.Helper()
	net, err := synth.Synthesize(d)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(net, fpga.NewU200(), specs)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := route.Route(net, pl)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(net, pl, rt, DefaultDelayModel())
	if err != nil {
		t.Fatal(err)
	}
	return an
}

// chainDesign builds a design whose critical path has `depth` sequential
// adders between registers.
func chainDesign(depth int) *rtl.Design {
	m := rtl.NewModule("chain")
	src := m.Reg("src", 16, "clk", 1)
	m.SetNext(src, rtl.S(src))
	prev := rtl.S(src)
	for i := 0; i < depth; i++ {
		w := m.Wire(wname(i), 16)
		m.Connect(w, rtl.Add(prev, rtl.C(uint64(i+1), 16)))
		prev = rtl.S(w)
	}
	dst := m.Reg("dst", 16, "clk", 0)
	m.SetNext(dst, prev)
	return rtl.NewDesign("chain", m)
}

func wname(i int) string { return "w" + string(rune('a'+i)) }

func TestDeeperLogicIsSlower(t *testing.T) {
	shallow := analyze(t, chainDesign(2), nil)
	deep := analyze(t, chainDesign(12), nil)
	if deep.CriticalNs <= shallow.CriticalNs {
		t.Errorf("12-stage chain (%.2fns) not slower than 2-stage (%.2fns)",
			deep.CriticalNs, shallow.CriticalNs)
	}
	if deep.FmaxMHz >= shallow.FmaxMHz {
		t.Error("fmax did not drop with depth")
	}
}

func TestMeetsFrequency(t *testing.T) {
	an := &Analysis{CriticalNs: 15.0}
	if !an.MeetsFrequency(50) {
		t.Error("15ns should meet 50 MHz (20ns)")
	}
	if an.MeetsFrequency(100) {
		t.Error("15ns should fail 100 MHz (10ns)")
	}
}

func TestCriticalPathIsReported(t *testing.T) {
	an := analyze(t, chainDesign(8), nil)
	if len(an.TopPaths) == 0 {
		t.Fatal("no paths reported")
	}
	if an.TopPaths[0].DelayNs != an.CriticalNs {
		t.Error("first path is not the critical one")
	}
	if an.TopPaths[0].Endpoint != "dst" {
		t.Errorf("critical endpoint = %q, want dst", an.TopPaths[0].Endpoint)
	}
	for i := 1; i < len(an.TopPaths); i++ {
		if an.TopPaths[i].DelayNs > an.TopPaths[i-1].DelayNs {
			t.Error("paths not sorted by delay")
		}
	}
}

func TestPathsThrough(t *testing.T) {
	an := &Analysis{TopPaths: []Path{
		{Endpoint: "zdbg.trigger", Startcell: "a"},
		{Endpoint: "cpu.pc", Startcell: "zdbg.step"},
		{Endpoint: "cpu.acc", Startcell: "cpu.pc"},
	}}
	if got := an.PathsThrough("zdbg"); got != 2 {
		t.Errorf("PathsThrough(zdbg) = %d, want 2", got)
	}
	if got := an.PathsThrough("nosuch"); got != 0 {
		t.Errorf("PathsThrough(nosuch) = %d, want 0", got)
	}
}

func TestSoCMeets50MHzConfiguration(t *testing.T) {
	// The §5.2 closure result at a scale testable in CI: the manycore SoC
	// meets its 50 MHz default both monolithic and partitioned.
	mono := analyze(t, workloads.ManycoreSoC(160), nil)
	if !mono.MeetsFrequency(50) {
		t.Errorf("monolithic SoC misses 50 MHz: %.2fns", mono.CriticalNs)
	}
	part := analyze(t, workloads.ManycoreSoC(160), []place.PartitionSpec{
		{Name: "mut", Paths: []string{workloads.CorePath(0, 0)}}})
	if !part.MeetsFrequency(50) {
		t.Errorf("partitioned SoC misses 50 MHz: %.2fns", part.CriticalNs)
	}
}

func TestCongestionSlowsTightRegions(t *testing.T) {
	// Same design, same region content, but a tighter over-provisioning
	// coefficient raises utilization and thus net delays in the region.
	d := workloads.ManycoreSoC(32)
	loose := analyze(t, d, []place.PartitionSpec{
		{Name: "mut", Paths: []string{workloads.ClusterPath(0)}, OverProvision: 2.0}})
	tight := analyze(t, d, []place.PartitionSpec{
		{Name: "mut", Paths: []string{workloads.ClusterPath(0)}, OverProvision: 0.15}})
	if tight.CriticalNs < loose.CriticalNs-0.001 {
		t.Errorf("tight region (%.3fns) faster than loose (%.3fns)",
			tight.CriticalNs, loose.CriticalNs)
	}
}
