package jtag

import (
	"errors"
	"testing"
	"time"

	"zoomie/internal/faults"
	"zoomie/internal/fpga"
)

// connectChaos attaches a guarded cable to a freshly configured probe
// board through a fault injector.
func connectChaos(t *testing.T, p faults.Profile) (*Cable, *faults.Injector) {
	t.Helper()
	dev := fpga.NewU200()
	board := fpga.NewBoard(dev)
	if err := board.Configure(probeImage(t, dev)); err != nil {
		t.Fatal(err)
	}
	in := faults.New(p)
	return ConnectWithOptions(board, Options{Faults: in}), in
}

func TestUnguardedByDefault(t *testing.T) {
	c := connectProbe(t)
	if c.Guarded() {
		t.Fatal("plain Connect must not enable the guarded transport")
	}
	c2, _ := connectChaos(t, faults.Profile{Seed: 1})
	if !c2.Guarded() {
		t.Fatal("cable with an injector must be guarded")
	}
}

func TestVerifiedReadbackSurvivesFlips(t *testing.T) {
	// 1% per-word read flips — the chaos stress rate. Every readback must
	// still return the true register values.
	c, in := connectChaos(t, faults.Profile{Seed: 11, ReadFlip: 0.01})
	for round := 0; round < 50; round++ {
		for slr, want := range []uint64{0x100, 0x200, 0x300} {
			frames, err := c.ReadbackFrames(slr, []int{11})
			if err != nil {
				t.Fatalf("round %d SLR %d: %v", round, slr, err)
			}
			if got := uint64(frames[0][0] & 0xffff); got != want {
				t.Fatalf("round %d: corrupted read reached the caller: SLR %d = %#x, want %#x",
					round, slr, got, want)
			}
		}
	}
	if in.Stats().ReadFlips == 0 {
		t.Fatal("no read flips fired at a 1% rate over 150 frame reads")
	}
}

func TestVerifiedWritebackSurvivesWriteFaults(t *testing.T) {
	// Flipped, dropped and duplicated writes at once: after every guarded
	// writeback the board must hold exactly the intended value.
	c, in := connectChaos(t, faults.Profile{
		Seed: 12, WriteFlip: 0.01, Drop: 0.1, Dup: 0.1,
	})
	frame := make([]uint32, fpga.FrameWords)
	for round := 0; round < 40; round++ {
		want := uint32(0x1000 + round)
		frame[0] = want // only mapped bits: r0 is 16 bits at bit 0
		if err := c.WritebackFrames(0, []int{11}, [][]uint32{frame}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got, err := c.Board.ReadFrame(0, 11)
		if err != nil {
			t.Fatal(err)
		}
		if got[0]&0xffff != want {
			t.Fatalf("round %d: board holds %#x, want %#x — a faulty write went undetected",
				round, got[0]&0xffff, want)
		}
	}
	st := in.Stats()
	if st.Drops == 0 || st.Dups == 0 {
		t.Fatalf("fault mix did not fire: %+v", st)
	}
	if c.Stats().Rewrites == 0 {
		t.Fatal("writes survived drops without any verify-after-write rewrite")
	}
}

func TestExecuteRetriesTransientErrors(t *testing.T) {
	c, in := connectChaos(t, faults.Profile{Seed: 13, Exec: 0.2})
	for i := 0; i < 100; i++ {
		if err := c.StopClock(); err != nil {
			t.Fatalf("op %d failed despite retries: %v", i, err)
		}
	}
	if c.Stats().Retries == 0 {
		t.Fatal("no retries recorded at a 20% transient rate")
	}
	if in.Stats().ExecErrors == 0 {
		t.Fatal("no transient errors fired")
	}
}

func TestRetriesExhaustedOnPersistentTransients(t *testing.T) {
	c, _ := connectChaos(t, faults.Profile{Seed: 14, Exec: 1.0})
	c.retry.BaseBackoff = time.Microsecond
	c.retry.MaxBackoff = 10 * time.Microsecond
	err := c.StopClock()
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("got %v, want ErrRetriesExhausted", err)
	}
	if !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("exhaustion error must wrap the last transient cause: %v", err)
	}
}

func TestWedgedBoardFailsFast(t *testing.T) {
	c, in := connectChaos(t, faults.Profile{Seed: 15})
	if err := c.Probe(); err != nil {
		t.Fatalf("probe of a healthy board: %v", err)
	}
	in.Wedge()
	start := time.Now()
	if err := c.Probe(); !errors.Is(err, faults.ErrWedged) {
		t.Fatalf("probe of a wedged board returned %v, want ErrWedged", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("wedge detection took %v — it must fail fast, not retry", took)
	}
	if _, err := c.ReadbackFrames(0, []int{11}); !errors.Is(err, faults.ErrWedged) {
		t.Fatal("readback of a wedged board must fail with ErrWedged")
	}
}

func TestChaosDeterminism(t *testing.T) {
	run := func() (CableStats, faults.Stats) {
		c, in := connectChaos(t, faults.Profile{
			Seed: 16, ReadFlip: 0.01, WriteFlip: 0.01, Drop: 0.05, Exec: 0.02,
		})
		c.retry.BaseBackoff = time.Microsecond
		c.retry.MaxBackoff = 10 * time.Microsecond
		frame := make([]uint32, fpga.FrameWords)
		for i := 0; i < 20; i++ {
			frame[0] = uint32(i)
			if err := c.WritebackFrames(0, []int{11}, [][]uint32{frame}); err != nil {
				t.Fatal(err)
			}
			if _, err := c.ReadbackFrames(1, []int{11}); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats(), in.Stats()
	}
	c1, i1 := run()
	c2, i2 := run()
	if c1 != c2 || i1 != i2 {
		t.Fatalf("identical seeds diverged:\ncable %+v vs %+v\nfaults %+v vs %+v", c1, c2, i1, i2)
	}
	if i1.Total() == 0 {
		t.Fatal("chaos run injected nothing")
	}
}
