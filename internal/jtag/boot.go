package jtag

import (
	"fmt"
	"sort"

	"zoomie/internal/bitstream"
	"zoomie/internal/fpga"
	"zoomie/internal/rtl"
)

// GenerateConfigStream builds the full-device configuration bitstream for
// an image: one chunk per SLR in ring order — BOUT pulses to select the
// chiplet, an IDCODE write (checked only by the primary, §4.5), WCFG and
// the frame data of all initial state — followed by the control write
// that pulses GSR and starts the clock (§4.1). The stream has exactly the
// shape the paper dissected: zero BOUT writes before the primary chunk,
// one before the first secondary, two before the second, and so on.
func GenerateConfigStream(img *fpga.Image) ([]uint32, error) {
	dev := img.Device
	if dev == nil {
		return nil, fmt.Errorf("jtag: image has no device")
	}
	frames, err := initialFrames(img)
	if err != nil {
		return nil, err
	}

	b := bitstream.NewBuilder()
	b.Nops(16) // leading dummy padding, as real streams carry
	b.Sync()
	n := len(dev.SLRs)
	for hops := 0; hops < n; hops++ {
		slr := (dev.Primary + hops) % n
		b.SelectSLR(hopsFor(hops))
		b.WriteReg(bitstream.RegIDCODE, bitstream.IDCodeFor(dev.Name, slr))
		// Write this SLR's initial-state frames in address order.
		var addrs []int
		for key := range frames {
			if key[0] == slr {
				addrs = append(addrs, key[1])
			}
		}
		sort.Ints(addrs)
		for _, far := range addrs {
			b.WriteFrames(fpga.FrameWords, far, frames[[2]int{slr, far}])
		}
	}
	// Finish: return to the primary and start the clock (raises GSR).
	b.Sync()
	b.StartClock()
	return b.Words(), nil
}

// hopsFor returns the incremental BOUT pulses needed to advance from the
// previous chunk's SLR to this one. The ring only moves forward, and each
// chunk is one hop past the previous, so after the primary every chunk is
// reached with hops pulses from a fresh selection.
func hopsFor(hops int) int { return hops }

// initialFrames composes the configuration frames holding every register
// init value and memory init word of the image.
func initialFrames(img *fpga.Image) (map[[2]int][]uint32, error) {
	frames := make(map[[2]int][]uint32)
	get := func(slr, far int) []uint32 {
		key := [2]int{slr, far}
		f, ok := frames[key]
		if !ok {
			f = make([]uint32, fpga.FrameWords)
			frames[key] = f
		}
		return f
	}
	for _, r := range img.Design.Registers {
		loc, ok := img.Map.Reg(r.Sig.Name)
		if !ok {
			return nil, fmt.Errorf("jtag: register %q missing from state map", r.Sig.Name)
		}
		put(get(loc.Addr.SLR, loc.Addr.Frame), loc.Addr.Bit, loc.Width, r.Init)
	}
	for _, m := range img.Design.Memories {
		loc, ok := img.Map.Mem(m.Name)
		if !ok {
			return nil, fmt.Errorf("jtag: memory %q missing from state map", m.Name)
		}
		for w := 0; w < m.Depth; w++ {
			v := uint64(0)
			if m.Init != nil {
				v = rtl.Truncate(m.Init[w], m.Width)
			}
			wa := loc.WordAddr(w)
			put(get(wa.SLR, wa.Frame), wa.Bit, loc.Width, v)
		}
	}
	return frames, nil
}

func put(frame []uint32, off, width int, v uint64) {
	for i := 0; i < width; i++ {
		bit := off + i
		if v>>uint(i)&1 != 0 {
			frame[bit/32] |= 1 << uint(bit%32)
		}
	}
}

// Boot performs the full configuration flow on a board: structural
// configuration (the netlist load a bitstream's LUT programming stands
// for), then execution of the generated configuration stream, which
// writes every initial-state frame chunk by chunk across the SLR ring and
// finally pulses GSR and starts the clock. After Boot the design runs.
func (c *Cable) Boot(img *fpga.Image) error {
	if !c.Board.Configured() {
		if err := c.Board.Configure(img); err != nil {
			return err
		}
	}
	if c.guard {
		return c.bootVerified(img)
	}
	stream, err := GenerateConfigStream(img)
	if err != nil {
		return err
	}
	if _, err := c.Execute(stream); err != nil {
		return fmt.Errorf("jtag: boot stream failed: %w", err)
	}
	if !c.Board.ClockRunning() {
		return fmt.Errorf("jtag: boot completed but the clock is not running")
	}
	return nil
}

// bootVerified is the guarded-transport boot: the initial-state frames
// go through the CRC verify-after-write path SLR by SLR instead of one
// long unverified stream, then the clock starts. Without this a single
// in-flight flip during configuration corrupts initial state silently —
// every later read faithfully returns the wrong image, so no amount of
// read verification can catch it.
func (c *Cable) bootVerified(img *fpga.Image) error {
	frames, err := initialFrames(img)
	if err != nil {
		return err
	}
	perSLR := map[int][]int{}
	for key := range frames {
		perSLR[key[0]] = append(perSLR[key[0]], key[1])
	}
	slrs := make([]int, 0, len(perSLR))
	for slr := range perSLR {
		slrs = append(slrs, slr)
	}
	sort.Ints(slrs)
	for _, slr := range slrs {
		addrs := perSLR[slr]
		sort.Ints(addrs)
		data := make([][]uint32, len(addrs))
		for i, far := range addrs {
			data[i] = frames[[2]int{slr, far}]
		}
		if err := c.WritebackFrames(slr, addrs, data); err != nil {
			return fmt.Errorf("jtag: boot frames of SLR %d: %w", slr, err)
		}
	}
	if err := c.StartClock(); err != nil {
		return fmt.Errorf("jtag: boot stream failed: %w", err)
	}
	if !c.Board.ClockRunning() {
		return fmt.Errorf("jtag: boot completed but the clock is not running")
	}
	return nil
}
