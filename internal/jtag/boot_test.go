package jtag

import (
	"testing"

	"zoomie/internal/bitstream"
	"zoomie/internal/fpga"
	"zoomie/internal/rtl"
	"zoomie/internal/sim"
)

// bootImage builds an image whose state spans all three SLRs with
// distinctive init values.
func bootImage(t *testing.T, dev *fpga.Device) *fpga.Image {
	t.Helper()
	m := rtl.NewModule("boot_dut")
	for i := 0; i < 3; i++ {
		r := m.Reg([]string{"ra", "rb", "rc"}[i], 16, "clk", uint64(0xA00+i))
		m.SetNext(r, rtl.Add(rtl.S(r), rtl.C(1, 16)))
	}
	mem := m.Mem("boot_rom", 8, 16)
	mem.Init = map[int]uint64{0: 0x11, 5: 0x55, 15: 0xFF}
	mem.Write("clk", rtl.C(0, 4), rtl.C(0, 8), rtl.C(0, 1))

	f, err := rtl.Elaborate(rtl.NewDesign("boot_dut", m))
	if err != nil {
		t.Fatal(err)
	}
	sm := fpga.NewStateMap()
	for i, name := range []string{"ra", "rb", "rc"} {
		if err := sm.AddReg(fpga.RegLoc{Name: name, Width: 16,
			Addr: fpga.BitAddr{SLR: i, Frame: 20 + i, Bit: 32}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sm.AddMem(fpga.MemLoc{Name: "boot_rom", Width: 8, Depth: 16, SLR: 1, StartFrame: 40}); err != nil {
		t.Fatal(err)
	}
	return &fpga.Image{
		Design: f,
		Clocks: []sim.ClockSpec{{Name: "clk", Period: 1}},
		Map:    sm,
		Device: dev,
	}
}

func TestGenerateConfigStreamShape(t *testing.T) {
	dev := fpga.NewU200()
	img := bootImage(t, dev)
	stream, err := GenerateConfigStream(img)
	if err != nil {
		t.Fatal(err)
	}
	// The §4.4 dissection: count BOUT writes between syncs. Chunk layout
	// here is a single sync followed by 0+1+2 pulses across the SLR
	// chunks, then a final sync for the control write.
	boutTotal := 0
	idcodes := 0
	syncs := 0
	for i := 0; i < len(stream); i++ {
		w := stream[i]
		if w == bitstream.SyncWord {
			syncs++
			continue
		}
		if w == bitstream.NopWord {
			continue
		}
		reg, write, n, ok := bitstream.DecodeHeader(w)
		if !ok {
			t.Fatalf("unrecognized word %#08x at %d", w, i)
		}
		if write && reg == bitstream.RegBOUT {
			boutTotal++
		}
		if write && reg == bitstream.RegIDCODE {
			idcodes++
		}
		if write {
			i += n
		}
	}
	if boutTotal != 0+1+2 {
		t.Errorf("BOUT writes = %d, want 3 (0+1+2 across chunks)", boutTotal)
	}
	if idcodes != 3 {
		t.Errorf("IDCODE writes = %d, want one per SLR chunk", idcodes)
	}
	if syncs != 2 {
		t.Errorf("syncs = %d, want 2", syncs)
	}
}

func TestBootLoadsStateAndStartsClock(t *testing.T) {
	dev := fpga.NewU200()
	img := bootImage(t, dev)
	board := fpga.NewBoard(dev)
	cable := Connect(board)
	if err := cable.Boot(img); err != nil {
		t.Fatal(err)
	}
	if !board.ClockRunning() {
		t.Fatal("clock not started")
	}
	// GSR at the end of configuration resets registers to init; memory
	// init came through frame writes.
	for i, name := range []string{"ra", "rb", "rc"} {
		if v, _ := board.Sim.Peek(name); v != uint64(0xA00+i) {
			t.Errorf("%s = %#x after boot, want %#x", name, v, 0xA00+i)
		}
	}
	for addr, want := range map[int]uint64{0: 0x11, 5: 0x55, 15: 0xFF, 7: 0} {
		if v, _ := board.Sim.PeekMem("boot_rom", addr); v != want {
			t.Errorf("boot_rom[%d] = %#x, want %#x", addr, v, want)
		}
	}
	// And the design executes.
	board.Advance(5)
	if v, _ := board.Sim.Peek("ra"); v != 0xA00+5 {
		t.Errorf("ra = %#x after 5 cycles, want %#x", v, 0xA00+5)
	}
	// Readback of a booted board reflects the stream-written memory.
	frames, err := cable.ReadbackFrames(1, []int{40})
	if err != nil {
		t.Fatal(err)
	}
	if got := frames[0][0] & 0xff; got != 0x11 {
		t.Errorf("frame readback of boot_rom[0] = %#x, want 0x11", got)
	}
}

func TestBootRejectsBrokenImage(t *testing.T) {
	dev := fpga.NewU200()
	img := bootImage(t, dev)
	img.Map = fpga.NewStateMap() // state map lost: registers unlocatable
	board := fpga.NewBoard(dev)
	if err := Connect(board).Boot(img); err == nil {
		t.Error("boot with empty state map accepted")
	}
	img2 := bootImage(t, dev)
	img2.Device = nil
	if _, err := GenerateConfigStream(img2); err == nil {
		t.Error("image without device accepted")
	}
}
