// Package jtag connects Zoomie's host software to an FPGA board: it
// adapts the board model to the bitstream microcontroller chain and
// exposes a Cable with the operations the debugger issues — executing
// configuration streams, reading back frame ranges, and controlling the
// clock. All host/board interaction flows through this package, mirroring
// how everything reaches real hardware through the JTAG port.
package jtag

import (
	"fmt"
	"time"

	"zoomie/internal/bitstream"
	"zoomie/internal/fpga"
)

// boardBackend adapts *fpga.Board to bitstream.Backend.
type boardBackend struct {
	board *fpga.Board
}

func (b boardBackend) NumSLRs() int    { return len(b.board.Device.SLRs) }
func (b boardBackend) Primary() int    { return b.board.Device.Primary }
func (b boardBackend) FrameWords() int { return fpga.FrameWords }
func (b boardBackend) FramesIn(slr int) int {
	return b.board.Device.SLRs[slr].Frames
}
func (b boardBackend) WriteFrame(slr, frame int, data []uint32) error {
	return b.board.WriteFrame(slr, frame, data)
}
func (b boardBackend) ReadFrame(slr, frame int) ([]uint32, error) {
	return b.board.ReadFrame(slr, frame)
}
func (b boardBackend) IDCode(slr int) uint32 {
	return bitstream.IDCodeFor(b.board.Device.Name, slr)
}

func (b boardBackend) WriteCTL(slr int, v uint32) error {
	// Control writes act device-wide but are only honored when directed at
	// the primary SLR, which commands the others (§4.6).
	if slr != b.board.Device.Primary {
		return fmt.Errorf("jtag: CTL write to secondary SLR %d ignored by hardware", slr)
	}
	if v&bitstream.CtlGSRPulse != 0 {
		b.board.ApplyGSR()
	}
	if v&bitstream.CtlClockRun != 0 {
		b.board.StartClock()
	} else {
		b.board.StopClock()
	}
	return nil
}

func (b boardBackend) WriteMask(slr int, v uint32) error {
	if v == 0 {
		b.board.SetGSRMask(nil)
		return nil
	}
	if !b.board.Configured() {
		return fmt.Errorf("jtag: MASK write before configuration")
	}
	idx := int(v) - 1
	regions := b.board.Image.Regions
	if idx < 0 || idx >= len(regions) {
		return fmt.Errorf("jtag: MASK selects missing region %d", idx)
	}
	r := regions[idx]
	b.board.SetGSRMask(&r)
	return nil
}

// Cable is the host's handle on the board's configuration port.
type Cable struct {
	Board *fpga.Board
	Chain *bitstream.Chain
}

// Connect attaches a cable to a board using the default cost model.
func Connect(board *fpga.Board) *Cable {
	return ConnectWithCost(board, bitstream.DefaultCostModel())
}

// ConnectWithCost attaches a cable with an explicit configuration-plane
// cost model.
func ConnectWithCost(board *fpga.Board, cost bitstream.CostModel) *Cable {
	return &Cable{
		Board: board,
		Chain: bitstream.NewChain(boardBackend{board}, cost),
	}
}

// Execute runs a configuration stream through the µc chain.
func (c *Cable) Execute(stream []uint32) ([]uint32, error) {
	return c.Chain.Execute(stream)
}

// ReadbackFrames reads the given frame addresses of one SLR, returning
// frame contents in the same order. It issues one BOUT selection for the
// SLR and coalesces runs of consecutive addresses into single multi-frame
// FDRO reads — the SLR-aware optimization of §4.7 ("scan each SLR only
// once", "only the regions that contain the MUT").
func (c *Cable) ReadbackFrames(slr int, frames []int) ([][]uint32, error) {
	if len(frames) == 0 {
		return nil, nil
	}
	hops := c.Board.Device.Hops(slr)
	b := bitstream.NewBuilder().Sync().SelectSLR(hops)
	// Coalesce consecutive frames.
	start := frames[0]
	run := 1
	flush := func() {
		b.ReadFrames(fpga.FrameWords, start, run)
	}
	for _, f := range frames[1:] {
		if f == start+run {
			run++
			continue
		}
		flush()
		start, run = f, 1
	}
	flush()
	words, err := c.Execute(b.Words())
	if err != nil {
		return nil, err
	}
	if len(words) != len(frames)*fpga.FrameWords {
		return nil, fmt.Errorf("jtag: readback returned %d words, want %d",
			len(words), len(frames)*fpga.FrameWords)
	}
	out := make([][]uint32, len(frames))
	for i := range out {
		out[i] = words[i*fpga.FrameWords : (i+1)*fpga.FrameWords]
	}
	return out, nil
}

// WritebackFrames writes the given frames of one SLR (partial
// reconfiguration).
func (c *Cable) WritebackFrames(slr int, frames []int, data [][]uint32) error {
	if len(frames) != len(data) {
		return fmt.Errorf("jtag: %d frame addresses but %d frames", len(frames), len(data))
	}
	if len(frames) == 0 {
		return nil
	}
	hops := c.Board.Device.Hops(slr)
	b := bitstream.NewBuilder().Sync().SelectSLR(hops)
	for i, f := range frames {
		b.WriteFrames(fpga.FrameWords, f, data[i])
	}
	_, err := c.Execute(b.Words())
	return err
}

// StartClock starts the global clock (and pulses GSR) through the primary
// SLR's control register.
func (c *Cable) StartClock() error {
	_, err := c.Execute(bitstream.NewBuilder().Sync().StartClock().Words())
	return err
}

// StopClock halts the global clock.
func (c *Cable) StopClock() error {
	_, err := c.Execute(bitstream.NewBuilder().Sync().StopClock().Words())
	return err
}

// ClearGSRMask clears the GSR mask register (issued before readback).
func (c *Cable) ClearGSRMask() error {
	_, err := c.Execute(bitstream.NewBuilder().Sync().ClearGSRMask().Words())
	return err
}

// Elapsed returns the modeled configuration-plane time accumulated so far.
func (c *Cable) Elapsed() time.Duration { return c.Chain.Elapsed }

// ResetStats clears accumulated timing and counters.
func (c *Cable) ResetStats() { c.Chain.ResetStats() }
