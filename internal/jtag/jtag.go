// Package jtag connects Zoomie's host software to an FPGA board: it
// adapts the board model to the bitstream microcontroller chain and
// exposes a Cable with the operations the debugger issues — executing
// configuration streams, reading back frame ranges, and controlling the
// clock. All host/board interaction flows through this package, mirroring
// how everything reaches real hardware through the JTAG port.
//
// The cable is also where link-level resilience lives. When connected
// with a fault injector (or with Options.Guard set), every operation runs
// guarded: transient errors are retried with exponential backoff and
// jitter under an operation deadline, frame readback is double-read until
// two consecutive reads agree (catching in-flight bit flips that have no
// ground truth to checksum against), and frame writeback is CRC32-
// verified against readback and rewritten until it sticks (catching
// flipped, dropped and duplicated writes). A cable connected without
// faults runs the exact unguarded code paths of the original transport —
// resilience is zero-cost when disabled.
package jtag

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"zoomie/internal/bitstream"
	"zoomie/internal/faults"
	"zoomie/internal/fpga"
)

// boardBackend adapts *fpga.Board to bitstream.Backend.
type boardBackend struct {
	board *fpga.Board
}

func (b boardBackend) NumSLRs() int    { return len(b.board.Device.SLRs) }
func (b boardBackend) Primary() int    { return b.board.Device.Primary }
func (b boardBackend) FrameWords() int { return fpga.FrameWords }
func (b boardBackend) FramesIn(slr int) int {
	return b.board.Device.SLRs[slr].Frames
}
func (b boardBackend) WriteFrame(slr, frame int, data []uint32) error {
	return b.board.WriteFrame(slr, frame, data)
}
func (b boardBackend) ReadFrame(slr, frame int) ([]uint32, error) {
	return b.board.ReadFrame(slr, frame)
}
func (b boardBackend) IDCode(slr int) uint32 {
	return bitstream.IDCodeFor(b.board.Device.Name, slr)
}

func (b boardBackend) WriteCTL(slr int, v uint32) error {
	// Control writes act device-wide but are only honored when directed at
	// the primary SLR, which commands the others (§4.6).
	if slr != b.board.Device.Primary {
		return fmt.Errorf("jtag: CTL write to secondary SLR %d ignored by hardware", slr)
	}
	if v&bitstream.CtlGSRPulse != 0 {
		b.board.ApplyGSR()
	}
	if v&bitstream.CtlClockRun != 0 {
		b.board.StartClock()
	} else {
		b.board.StopClock()
	}
	return nil
}

func (b boardBackend) WriteMask(slr int, v uint32) error {
	if v == 0 {
		b.board.SetGSRMask(nil)
		return nil
	}
	if !b.board.Configured() {
		return fmt.Errorf("jtag: MASK write before configuration")
	}
	idx := int(v) - 1
	regions := b.board.Image.Regions
	if idx < 0 || idx >= len(regions) {
		return fmt.Errorf("jtag: MASK selects missing region %d", idx)
	}
	r := regions[idx]
	b.board.SetGSRMask(&r)
	return nil
}

// Typed link errors the upper layers classify board failures with.
var (
	// ErrRetriesExhausted wraps the last transient error after the retry
	// budget ran out — the link is flaky beyond what backoff can absorb.
	ErrRetriesExhausted = errors.New("jtag: retries exhausted")
	// ErrDeadline wraps the last error when an operation (including its
	// retries) exceeded the per-operation deadline.
	ErrDeadline = errors.New("jtag: operation deadline exceeded")
	// ErrVerify reports data that could not be read or written cleanly
	// within the retry budget: reads that never produced two agreeing
	// copies, or writes whose readback CRC kept mismatching.
	ErrVerify = errors.New("jtag: frame verification failed")
)

// RetryPolicy bounds the guarded transport's persistence. The zero value
// takes the defaults below.
type RetryPolicy struct {
	// MaxRetries is the retry budget per logical operation (default 8).
	MaxRetries int
	// BaseBackoff is the first retry's backoff (default 200µs); each
	// subsequent retry doubles it up to MaxBackoff, plus up to 50% jitter.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff (default 10ms).
	MaxBackoff time.Duration
	// Deadline bounds one logical operation including all retries and
	// verification passes (default 10s).
	Deadline time.Duration
	// Agreement is the read-verification depth: a word counts as read
	// only after this many consecutive identical observations. Default 2
	// on a clean guarded link; when a fault injector is bound the cable
	// raises the default to 3, because at per-word flip rate f the
	// chance of the same word corrupting identically n times in a row is
	// ~(f/32)^(n-1)·f — at f=1% that is ~3e-6 per word for n=2, which a
	// long campaign of coalesced readbacks will eventually hit, versus
	// ~1e-9 for n=3.
	Agreement int
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxRetries <= 0 {
		r.MaxRetries = 8
	}
	if r.BaseBackoff <= 0 {
		r.BaseBackoff = 200 * time.Microsecond
	}
	if r.MaxBackoff <= 0 {
		r.MaxBackoff = 10 * time.Millisecond
	}
	if r.Deadline <= 0 {
		r.Deadline = 10 * time.Second
	}
	if r.Agreement <= 1 {
		r.Agreement = 2
	}
	return r
}

// Options configures a cable beyond the default clean transport.
type Options struct {
	// Cost is the configuration-plane cost model (zero value: default).
	Cost bitstream.CostModel
	// Faults, when set, interposes the injector between the µc chain and
	// the board and enables the guarded transport.
	Faults *faults.Injector
	// Guard enables the resilient transport without an injector (verify
	// and retry against a clean link — useful for measuring overhead).
	Guard bool
	// Retry tunes the guarded transport (zero value: defaults).
	Retry RetryPolicy
}

// CableStats counts the guarded transport's recovery work. All fields are
// updated with atomics so other goroutines (the server stats path) can
// snapshot them while the owning actor drives the cable.
type CableStats struct {
	Retries     int64 // stream executions retried after transient errors
	ReReads     int64 // extra frame reads issued until two copies agreed
	Rewrites    int64 // frames rewritten after CRC verify-after-write failed
	VerifyFails int64 // operations abandoned with ErrVerify
	Readbacks   int64 // ReadbackFrames calls (logical readback operations)
	Writebacks  int64 // WritebackFrames calls (logical writeback operations)
}

// Cable is the host's handle on the board's configuration port.
type Cable struct {
	Board *fpga.Board
	Chain *bitstream.Chain

	guard bool
	retry RetryPolicy

	jmu  sync.Mutex // guards jrng (jitter only; never on the clean path)
	jrng *rand.Rand

	retries     int64 // atomic
	reReads     int64 // atomic
	rewrites    int64 // atomic
	verifyFails int64 // atomic
	readbacks   int64 // atomic
	writebacks  int64 // atomic
}

// Connect attaches a cable to a board using the default cost model and
// the clean (unguarded) transport.
func Connect(board *fpga.Board) *Cable {
	return ConnectWithCost(board, bitstream.DefaultCostModel())
}

// ConnectWithCost attaches a cable with an explicit configuration-plane
// cost model.
func ConnectWithCost(board *fpga.Board, cost bitstream.CostModel) *Cable {
	return ConnectWithOptions(board, Options{Cost: cost})
}

// ConnectWithOptions attaches a cable with full control over the cost
// model, fault injection and the guarded transport.
func ConnectWithOptions(board *fpga.Board, opts Options) *Cable {
	if opts.Cost == (bitstream.CostModel{}) {
		opts.Cost = bitstream.DefaultCostModel()
	}
	var backend bitstream.Backend = boardBackend{board}
	guard := opts.Guard
	seed := int64(1)
	if opts.Faults != nil {
		backend = opts.Faults.Bind(backend)
		guard = true
		seed = opts.Faults.Profile().Seed + 1
		if opts.Retry.Agreement == 0 {
			opts.Retry.Agreement = 3 // known-flaky link: deeper read agreement
		}
	}
	return &Cable{
		Board: board,
		Chain: bitstream.NewChain(backend, opts.Cost),
		guard: guard,
		retry: opts.Retry.withDefaults(),
		jrng:  rand.New(rand.NewSource(seed)),
	}
}

// Guarded reports whether the resilient transport is active.
func (c *Cable) Guarded() bool { return c.guard }

// Stats snapshots the recovery counters. Safe to call from any goroutine.
func (c *Cable) Stats() CableStats {
	return CableStats{
		Retries:     atomic.LoadInt64(&c.retries),
		ReReads:     atomic.LoadInt64(&c.reReads),
		Rewrites:    atomic.LoadInt64(&c.rewrites),
		VerifyFails: atomic.LoadInt64(&c.verifyFails),
		Readbacks:   atomic.LoadInt64(&c.readbacks),
		Writebacks:  atomic.LoadInt64(&c.writebacks),
	}
}

// Execute runs a configuration stream through the µc chain. Under guard,
// transient link errors are retried with exponential backoff and jitter
// up to the retry budget and operation deadline; wedged-board errors fail
// fast so the caller can quarantine.
func (c *Cable) Execute(stream []uint32) ([]uint32, error) {
	return c.ExecuteCtx(context.Background(), stream)
}

// ExecuteCtx is Execute under a context: cancellation interrupts both the
// stream interpretation (between frames of a coalesced read or write) and
// the guarded transport's backoff sleeps, returning ctx.Err() promptly.
func (c *Cable) ExecuteCtx(ctx context.Context, stream []uint32) ([]uint32, error) {
	if !c.guard {
		return c.Chain.ExecuteCtx(ctx, stream)
	}
	return c.executeGuarded(ctx, stream, time.Now().Add(c.retry.Deadline))
}

// executeGuarded retries transient failures of one stream execution.
func (c *Cable) executeGuarded(ctx context.Context, stream []uint32, deadline time.Time) ([]uint32, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		out, err := c.Chain.ExecuteCtx(ctx, stream)
		if err == nil {
			return out, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err() // cancelled mid-stream: do not retry
		}
		if errors.Is(err, faults.ErrWedged) {
			return nil, err // retrying a wedged board is pointless
		}
		if !errors.Is(err, faults.ErrTransient) {
			return nil, err // structural error: deterministic, do not retry
		}
		lastErr = err
		if attempt >= c.retry.MaxRetries {
			return nil, fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, attempt+1, lastErr)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: %v", ErrDeadline, lastErr)
		}
		atomic.AddInt64(&c.retries, 1)
		if err := sleepCtx(ctx, c.backoff(attempt)); err != nil {
			return nil, err
		}
	}
}

// sleepCtx sleeps for d or until the context is cancelled, whichever
// comes first — the ctx-aware replacement for time.Sleep in retry loops.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		time.Sleep(d) // no cancellation possible; skip the timer machinery
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff returns the sleep before retry attempt+1: exponential from
// BaseBackoff, capped at MaxBackoff, plus up to 50% seeded jitter so
// concurrent sessions retrying against one chassis don't stampede.
func (c *Cable) backoff(attempt int) time.Duration {
	d := c.retry.BaseBackoff << uint(attempt)
	if d > c.retry.MaxBackoff || d <= 0 {
		d = c.retry.MaxBackoff
	}
	c.jmu.Lock()
	j := time.Duration(c.jrng.Int63n(int64(d)/2 + 1))
	c.jmu.Unlock()
	return d + j
}

// readbackStream builds the coalesced FDRO stream for a set of frame
// addresses of one SLR: one BOUT selection, runs of consecutive addresses
// merged into multi-frame reads — the SLR-aware optimization of §4.7.
func (c *Cable) readbackStream(slr int, frames []int) []uint32 {
	hops := c.Board.Device.Hops(slr)
	b := bitstream.NewBuilder().Sync().SelectSLR(hops)
	start := frames[0]
	run := 1
	flush := func() {
		b.ReadFrames(fpga.FrameWords, start, run)
	}
	for _, f := range frames[1:] {
		if f == start+run {
			run++
			continue
		}
		flush()
		start, run = f, 1
	}
	flush()
	return b.Words()
}

// readbackOnce executes one readback pass and splits the payload.
func (c *Cable) readbackOnce(ctx context.Context, slr int, frames []int, deadline time.Time) ([][]uint32, error) {
	stream := c.readbackStream(slr, frames)
	var words []uint32
	var err error
	if c.guard {
		words, err = c.executeGuarded(ctx, stream, deadline)
	} else {
		words, err = c.Chain.ExecuteCtx(ctx, stream)
	}
	if err != nil {
		return nil, err
	}
	if len(words) != len(frames)*fpga.FrameWords {
		return nil, fmt.Errorf("jtag: readback returned %d words, want %d",
			len(words), len(frames)*fpga.FrameWords)
	}
	out := make([][]uint32, len(frames))
	for i := range out {
		out[i] = words[i*fpga.FrameWords : (i+1)*fpga.FrameWords]
	}
	return out, nil
}

// ReadbackFrames reads the given frame addresses of one SLR, returning
// frame contents in the same order. It issues one BOUT selection for the
// SLR and coalesces runs of consecutive addresses into single multi-frame
// FDRO reads — the SLR-aware optimization of §4.7 ("scan each SLR only
// once", "only the regions that contain the MUT"). Under guard the read
// is verified: see ReadbackFramesVerified.
func (c *Cable) ReadbackFrames(slr int, frames []int) ([][]uint32, error) {
	return c.ReadbackFramesCtx(context.Background(), slr, frames)
}

// ReadbackFramesCtx is ReadbackFrames under a context: cancellation
// aborts the coalesced read between frames and interrupts any guard
// retries, returning ctx.Err().
func (c *Cable) ReadbackFramesCtx(ctx context.Context, slr int, frames []int) ([][]uint32, error) {
	if len(frames) == 0 {
		return nil, nil
	}
	// An already-cancelled operation never reaches the cable, so it does
	// not count as a logical readback.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	atomic.AddInt64(&c.readbacks, 1)
	if c.guard {
		return c.readbackVerified(ctx, slr, frames)
	}
	return c.readbackOnce(ctx, slr, frames, time.Time{})
}

// verifyBudget bounds the verification loops. It is deliberately larger
// than the transient-retry budget: at a 1% per-word flip rate a 93-word
// frame reads or writes cleanly only ~39% of the time, so whole-frame
// success needs more attempts than a per-operation transient does.
func (c *Cable) verifyBudget() int { return 4 * c.retry.MaxRetries }

// ReadbackFramesVerified reads frames until every word of every frame has
// been seen identically in retry.Agreement consecutive reads (2 on a
// clean guarded link, 3 when a fault injector is bound). A read has no
// ground truth to checksum against, so agreement between independent
// reads is the integrity criterion — and it is applied per word, not per
// frame: an in-flight flip would have to corrupt the same word the same
// way on every read of the streak to slip through, while demanding fully
// clean 93-word frames would almost never converge at percent-level flip
// rates. Confirmed frames drop out of the re-read set; only the
// unconfirmed subset goes back on the wire. The design is quiesced during
// readback (the configuration plane owns the clock), so words confirmed
// by different read streaks belong to one consistent frame.
func (c *Cable) ReadbackFramesVerified(slr int, frames []int) ([][]uint32, error) {
	return c.readbackVerified(context.Background(), slr, frames)
}

func (c *Cable) readbackVerified(ctx context.Context, slr int, frames []int) ([][]uint32, error) {
	deadline := time.Now().Add(c.retry.Deadline)
	prev, err := c.readbackOnce(ctx, slr, frames, deadline)
	if err != nil {
		return nil, err
	}
	agree := c.retry.Agreement
	out := make([][]uint32, len(frames))
	left := make([]int, len(frames)) // unconfirmed words per frame
	conf := make([][]bool, len(frames))
	streak := make([][]int, len(frames)) // consecutive identical observations
	pending := make([]int, len(frames))  // positions not yet fully confirmed
	for i := range frames {
		out[i] = make([]uint32, fpga.FrameWords)
		conf[i] = make([]bool, fpga.FrameWords)
		streak[i] = make([]int, fpga.FrameWords)
		for w := range streak[i] {
			streak[i][w] = 1 // the mandatory first read
		}
		left[i] = fpga.FrameWords
		pending[i] = i
	}
	for attempt := 0; len(pending) > 0; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > c.verifyBudget() {
			atomic.AddInt64(&c.verifyFails, 1)
			return nil, fmt.Errorf("%w: %d frames of SLR %d never fully agreed across consecutive reads",
				ErrVerify, len(pending), slr)
		}
		if time.Now().After(deadline) {
			atomic.AddInt64(&c.verifyFails, 1)
			return nil, fmt.Errorf("%w: read verification of SLR %d", ErrDeadline, slr)
		}
		sub := make([]int, len(pending))
		for i, p := range pending {
			sub[i] = frames[p]
		}
		cur, err := c.readbackOnce(ctx, slr, sub, deadline)
		if err != nil {
			return nil, err
		}
		if attempt > 0 { // reads beyond the mandatory second are recovery work
			atomic.AddInt64(&c.reReads, int64(len(sub)))
		}
		var still []int
		for i, p := range pending {
			for w := 0; w < fpga.FrameWords; w++ {
				if conf[p][w] {
					continue
				}
				if cur[i][w] == prev[p][w] {
					streak[p][w]++
				} else {
					streak[p][w] = 1
				}
				if streak[p][w] >= agree {
					out[p][w] = cur[i][w]
					conf[p][w] = true
					left[p]--
				}
			}
			if left[p] > 0 {
				prev[p] = cur[i]
				still = append(still, p)
			}
		}
		pending = still
	}
	return out, nil
}

// writebackStream builds the partial-reconfiguration stream writing the
// given frames of one SLR.
func (c *Cable) writebackStream(slr int, frames []int, data [][]uint32) []uint32 {
	hops := c.Board.Device.Hops(slr)
	b := bitstream.NewBuilder().Sync().SelectSLR(hops)
	for i, f := range frames {
		b.WriteFrames(fpga.FrameWords, f, data[i])
	}
	return b.Words()
}

// WritebackFrames writes the given frames of one SLR (partial
// reconfiguration). Under guard every frame is verified after write: the
// CRC32 of the data handed to the cable is compared against the CRC32 of
// the frame read back, and mismatching frames are rewritten until they
// stick or the retry budget runs out. This is what keeps flipped,
// dropped and duplicated writes from silently poisoning design state.
func (c *Cable) WritebackFrames(slr int, frames []int, data [][]uint32) error {
	return c.WritebackFramesCtx(context.Background(), slr, frames, data)
}

// WritebackFramesCtx is WritebackFrames under a context: cancellation
// aborts the write between frames and interrupts the verify-after-write
// loop, returning ctx.Err().
func (c *Cable) WritebackFramesCtx(ctx context.Context, slr int, frames []int, data [][]uint32) error {
	if len(frames) != len(data) {
		return fmt.Errorf("jtag: %d frame addresses but %d frames", len(frames), len(data))
	}
	if len(frames) == 0 {
		return nil
	}
	// As in ReadbackFramesCtx: cancelled before the cable, not counted.
	if err := ctx.Err(); err != nil {
		return err
	}
	atomic.AddInt64(&c.writebacks, 1)
	if !c.guard {
		_, err := c.Chain.ExecuteCtx(ctx, c.writebackStream(slr, frames, data))
		return err
	}
	deadline := time.Now().Add(c.retry.Deadline)
	wantCRC := make([]uint32, len(frames))
	for i := range data {
		wantCRC[i] = fpga.FrameCRC(data[i])
	}
	pendF, pendD, pendCRC := frames, data, wantCRC
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := c.executeGuarded(ctx, c.writebackStream(slr, pendF, pendD), deadline); err != nil {
			return err
		}
		readback, err := c.readbackVerified(ctx, slr, pendF)
		if err != nil {
			return err
		}
		var badF []int
		var badD [][]uint32
		var badCRC []uint32
		for i := range pendF {
			if fpga.FrameCRC(readback[i]) != pendCRC[i] {
				badF = append(badF, pendF[i])
				badD = append(badD, pendD[i])
				badCRC = append(badCRC, pendCRC[i])
			}
		}
		if len(badF) == 0 {
			return nil
		}
		if attempt >= c.verifyBudget() {
			atomic.AddInt64(&c.verifyFails, 1)
			return fmt.Errorf("%w: %d frames of SLR %d failed CRC verify-after-write",
				ErrVerify, len(badF), slr)
		}
		if time.Now().After(deadline) {
			atomic.AddInt64(&c.verifyFails, 1)
			return fmt.Errorf("%w: write verification of SLR %d", ErrDeadline, slr)
		}
		atomic.AddInt64(&c.rewrites, int64(len(badF)))
		pendF, pendD, pendCRC = badF, badD, badCRC
	}
}

// StartClock starts the global clock (and pulses GSR) through the primary
// SLR's control register.
func (c *Cable) StartClock() error {
	_, err := c.Execute(bitstream.NewBuilder().Sync().StartClock().Words())
	return err
}

// StopClock halts the global clock.
func (c *Cable) StopClock() error {
	_, err := c.Execute(bitstream.NewBuilder().Sync().StopClock().Words())
	return err
}

// ClearGSRMask clears the GSR mask register (issued before readback).
func (c *Cable) ClearGSRMask() error {
	_, err := c.Execute(bitstream.NewBuilder().Sync().ClearGSRMask().Words())
	return err
}

// Probe is the health check: it reads back one frame of the primary SLR
// through the full transport. A flaky-but-alive board passes (transients
// are retried away); a wedged board fails fast with faults.ErrWedged, so
// the server's prober catches it within one probe interval. No design
// state is touched. (An IDCODE read would not do: identity queries are
// shape passthroughs that bypass the fault seam entirely.)
func (c *Cable) Probe() error {
	return c.ProbeCtx(context.Background())
}

// ProbeCtx is Probe under a context.
func (c *Cable) ProbeCtx(ctx context.Context) error {
	slr := c.Board.Device.Primary
	if !c.guard {
		_, err := c.readbackOnce(ctx, slr, []int{0}, time.Time{})
		return err
	}
	_, err := c.readbackOnce(ctx, slr, []int{0}, time.Now().Add(c.retry.Deadline))
	return err
}

// Elapsed returns the modeled configuration-plane time accumulated so far.
func (c *Cable) Elapsed() time.Duration { return c.Chain.Elapsed }

// ResetStats clears accumulated timing and counters.
func (c *Cable) ResetStats() { c.Chain.ResetStats() }
