package jtag

import (
	"testing"

	"zoomie/internal/bitstream"
	"zoomie/internal/fpga"
	"zoomie/internal/rtl"
	"zoomie/internal/sim"
)

// probeImage builds the §4.5 probe design: three registers initialized to
// different constants, each constrained to a different SLR.
func probeImage(t *testing.T, dev *fpga.Device) *fpga.Image {
	t.Helper()
	m := rtl.NewModule("probe")
	for i := 0; i < 3; i++ {
		name := "r" + string(rune('0'+i))
		r := m.Reg(name, 16, "clk", uint64(0x100*(i+1)))
		m.SetNext(r, rtl.S(r)) // holds its constant
	}
	f, err := rtl.Elaborate(rtl.NewDesign("probe", m))
	if err != nil {
		t.Fatal(err)
	}
	sm := fpga.NewStateMap()
	for i := 0; i < 3; i++ {
		name := "r" + string(rune('0'+i))
		if err := sm.AddReg(fpga.RegLoc{
			Name: name, Width: 16,
			Addr: fpga.BitAddr{SLR: i, Frame: 11, Bit: 0},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return &fpga.Image{
		Design: f,
		Clocks: []sim.ClockSpec{{Name: "clk", Period: 1}},
		Map:    sm,
		Device: dev,
		Regions: []fpga.Region{
			{Name: "dyn", SLR: 0, Row: 0, Col: 0, Rows: 1, Cols: 125},
		},
	}
}

func connectProbe(t *testing.T) *Cable {
	t.Helper()
	dev := fpga.NewU200()
	board := fpga.NewBoard(dev)
	if err := board.Configure(probeImage(t, dev)); err != nil {
		t.Fatal(err)
	}
	return Connect(board)
}

func TestReadbackFromEachSLR(t *testing.T) {
	// §4.5 "Reading Back from Different SLRs": the same frame address on
	// each SLR holds that SLR's probe register.
	c := connectProbe(t)
	for slr, want := range []uint64{0x100, 0x200, 0x300} {
		frames, err := c.ReadbackFrames(slr, []int{11})
		if err != nil {
			t.Fatal(err)
		}
		got := uint64(frames[0][0] & 0xffff)
		if got != want {
			t.Errorf("SLR %d readback = %#x, want %#x", slr, got, want)
		}
	}
}

func TestReadbackCoalescesConsecutiveFrames(t *testing.T) {
	c := connectProbe(t)
	c.ResetStats()
	if _, err := c.ReadbackFrames(0, []int{5, 6, 7, 20, 21}); err != nil {
		t.Fatal(err)
	}
	if c.Chain.Stats.FramesRead != 5 {
		t.Errorf("frames read = %d, want 5", c.Chain.Stats.FramesRead)
	}
	// Two runs + one SLR selection (2 hops to SLR0): command count stays
	// small because runs coalesce into single FDRO reads.
	if c.Chain.Stats.Hops != 2 {
		t.Errorf("hops = %d, want 2", c.Chain.Stats.Hops)
	}
}

func TestClockControlThroughCable(t *testing.T) {
	c := connectProbe(t)
	if c.Board.ClockRunning() {
		t.Fatal("clock running before StartClock")
	}
	if err := c.StartClock(); err != nil {
		t.Fatal(err)
	}
	if !c.Board.ClockRunning() {
		t.Error("StartClock did not start clock")
	}
	if err := c.StopClock(); err != nil {
		t.Fatal(err)
	}
	if c.Board.ClockRunning() {
		t.Error("StopClock did not stop clock")
	}
}

func TestCTLRejectedOnSecondarySLR(t *testing.T) {
	c := connectProbe(t)
	stream := bitstream.NewBuilder().Sync().SelectSLR(1).StopClock().Words()
	if _, err := c.Execute(stream); err == nil {
		t.Error("CTL write on secondary SLR accepted")
	}
}

func TestWritebackMutatesState(t *testing.T) {
	c := connectProbe(t)
	frames, err := c.ReadbackFrames(2, []int{11})
	if err != nil {
		t.Fatal(err)
	}
	frames[0][0] = 0xABCD
	if err := c.WritebackFrames(2, []int{11}, frames); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Board.Sim.Peek("r2"); v != 0xABCD {
		t.Errorf("r2 = %#x after writeback, want 0xABCD", v)
	}
}

func TestWritebackLengthMismatch(t *testing.T) {
	c := connectProbe(t)
	if err := c.WritebackFrames(0, []int{1, 2}, make([][]uint32, 1)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMaskRegisterSelectsImageRegion(t *testing.T) {
	c := connectProbe(t)
	stream := bitstream.NewBuilder().Sync().SetGSRMask(0).Words()
	if _, err := c.Execute(stream); err != nil {
		t.Fatal(err)
	}
	if !c.Board.GSRMasked() {
		t.Fatal("mask not applied")
	}
	if err := c.ClearGSRMask(); err != nil {
		t.Fatal(err)
	}
	if c.Board.GSRMasked() {
		t.Error("mask not cleared")
	}
	// Selecting a region that does not exist fails.
	stream = bitstream.NewBuilder().Sync().SetGSRMask(9).Words()
	if _, err := c.Execute(stream); err == nil {
		t.Error("missing region accepted")
	}
}

func TestReadbackTimeScalesWithFrames(t *testing.T) {
	// The mechanism behind Table 3: naive full-SLR scans cost ~87x more
	// modeled time than scanning just the frames holding the MUT.
	c := connectProbe(t)
	slr := c.Board.Device.SLRs[0]

	c.ResetStats()
	all := make([]int, slr.Frames)
	for i := range all {
		all[i] = i
	}
	if _, err := c.ReadbackFrames(0, all); err != nil {
		t.Fatal(err)
	}
	naive := c.Elapsed()

	c.ResetStats()
	few := make([]int, 230)
	for i := range few {
		few[i] = i
	}
	if _, err := c.ReadbackFrames(0, few); err != nil {
		t.Fatal(err)
	}
	opt := c.Elapsed()

	ratio := float64(naive) / float64(opt)
	if ratio < 60 || ratio > 110 {
		t.Errorf("naive/optimized readback ratio = %.1f, want ~87", ratio)
	}
	if naive.Seconds() < 30 || naive.Seconds() > 38 {
		t.Errorf("naive SLR scan = %v, want ~33.6s", naive)
	}
}

func TestEmptyReadbackIsNoOp(t *testing.T) {
	c := connectProbe(t)
	out, err := c.ReadbackFrames(0, nil)
	if err != nil || out != nil {
		t.Errorf("empty readback = %v, %v", out, err)
	}
	if err := c.WritebackFrames(0, nil, nil); err != nil {
		t.Errorf("empty writeback: %v", err)
	}
}
