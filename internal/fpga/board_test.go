package fpga

import (
	"testing"

	"zoomie/internal/rtl"
	"zoomie/internal/sim"
)

// testImage builds a tiny image by hand: a counter register placed on SLR0
// frame 3 and a 4-word memory on SLR2 starting at frame 9.
func testImage(t *testing.T, dev *Device) *Image {
	t.Helper()
	m := rtl.NewModule("dut")
	en := m.Input("en", 1)
	cnt := m.Reg("cnt", 8, "clk", 5)
	m.SetNext(cnt, rtl.Add(rtl.S(cnt), rtl.C(1, 8)))
	m.SetEnable(cnt, rtl.S(en))
	mem := m.Mem("buf", 16, 4)
	mem.Init = map[int]uint64{0: 0x1111, 1: 0x2222, 2: 0x3333, 3: 0x4444}
	mem.Write("clk", rtl.C(0, 2), rtl.C(0, 16), rtl.C(0, 1))
	q := m.Output("q", 8)
	m.Connect(q, rtl.S(cnt))

	f, err := rtl.Elaborate(rtl.NewDesign("dut", m))
	if err != nil {
		t.Fatal(err)
	}
	sm := NewStateMap()
	if err := sm.AddReg(RegLoc{Name: "cnt", Width: 8, Addr: BitAddr{SLR: 0, Frame: 3, Bit: 16}}); err != nil {
		t.Fatal(err)
	}
	if err := sm.AddMem(MemLoc{Name: "buf", Width: 16, Depth: 4, SLR: 2, StartFrame: 9}); err != nil {
		t.Fatal(err)
	}
	return &Image{
		Design: f,
		Clocks: []sim.ClockSpec{{Name: "clk", Period: 1}},
		Map:    sm,
		Device: dev,
	}
}

func TestBoardConfigureAndClock(t *testing.T) {
	dev := NewU200()
	b := NewBoard(dev)
	if b.Configured() {
		t.Fatal("unconfigured board claims configured")
	}
	img := testImage(t, dev)
	if err := b.Configure(img); err != nil {
		t.Fatal(err)
	}
	if !b.Configured() || b.ClockRunning() {
		t.Fatal("freshly configured board should have stopped clock")
	}
	b.Sim.Poke("en", 1)
	b.Advance(10)
	if v, _ := b.Sim.Peek("q"); v != 5 {
		t.Errorf("design ran with stopped clock: q=%d", v)
	}
	b.StartClock()
	b.Advance(10)
	if v, _ := b.Sim.Peek("q"); v != 15 {
		t.Errorf("q = %d after 10 running cycles, want 15", v)
	}
	b.StopClock()
	b.Advance(10)
	if v, _ := b.Sim.Peek("q"); v != 15 {
		t.Errorf("q = %d after stop, want 15", v)
	}
}

func TestBoardRejectsWrongDevice(t *testing.T) {
	img := testImage(t, NewU200())
	b := NewBoard(NewU250())
	if err := b.Configure(img); err == nil {
		t.Error("image for U200 accepted on U250")
	}
}

func TestFrameReadbackMatchesState(t *testing.T) {
	dev := NewU200()
	b := NewBoard(dev)
	if err := b.Configure(testImage(t, dev)); err != nil {
		t.Fatal(err)
	}
	b.Sim.Poke("en", 1)
	b.StartClock()
	b.Advance(7) // cnt = 5 + 7 = 12
	data, err := b.ReadFrame(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := getBits(data, 16, 8); got != 12 {
		t.Errorf("readback cnt = %d, want 12", got)
	}
	// Memory words on SLR2 frame 9: 16-bit words packed from bit 0.
	mdata, err := b.ReadFrame(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{0x1111, 0x2222, 0x3333, 0x4444} {
		if got := getBits(mdata, i*16, 16); got != want {
			t.Errorf("readback buf[%d] = %#x, want %#x", i, got, want)
		}
	}
}

func TestFrameWriteMutatesState(t *testing.T) {
	dev := NewU200()
	b := NewBoard(dev)
	if err := b.Configure(testImage(t, dev)); err != nil {
		t.Fatal(err)
	}
	data, err := b.ReadFrame(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	putBits(data, 16, 8, 200)
	if err := b.WriteFrame(0, 3, data); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Sim.Peek("cnt"); v != 200 {
		t.Errorf("cnt = %d after frame write, want 200", v)
	}
	// Mutate one memory word through its frame.
	mdata, _ := b.ReadFrame(2, 9)
	putBits(mdata, 2*16, 16, 0xBEEF)
	if err := b.WriteFrame(2, 9, mdata); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Sim.PeekMem("buf", 2); v != 0xBEEF {
		t.Errorf("buf[2] = %#x, want 0xBEEF", v)
	}
	if v, _ := b.Sim.PeekMem("buf", 1); v != 0x2222 {
		t.Errorf("buf[1] = %#x, must be untouched", v)
	}
}

func TestFrameBoundsChecking(t *testing.T) {
	dev := NewU200()
	b := NewBoard(dev)
	if _, err := b.ReadFrame(0, 0); err == nil {
		t.Error("read on unconfigured board accepted")
	}
	if err := b.Configure(testImage(t, dev)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadFrame(7, 0); err == nil {
		t.Error("bad SLR accepted")
	}
	if _, err := b.ReadFrame(0, dev.SLRs[0].Frames); err == nil {
		t.Error("bad frame accepted")
	}
	if err := b.WriteFrame(0, 3, make([]uint32, 2)); err == nil {
		t.Error("short frame accepted")
	}
}

func TestGSRResetsToInit(t *testing.T) {
	dev := NewU200()
	b := NewBoard(dev)
	if err := b.Configure(testImage(t, dev)); err != nil {
		t.Fatal(err)
	}
	b.Sim.Poke("en", 1)
	b.StartClock()
	b.Advance(20)
	b.ApplyGSR()
	if v, _ := b.Sim.Peek("cnt"); v != 5 {
		t.Errorf("cnt = %d after GSR, want init 5", v)
	}
}

func TestGSRMaskRestrictsResetAndTrapsReadback(t *testing.T) {
	dev := NewU200()
	b := NewBoard(dev)
	if err := b.Configure(testImage(t, dev)); err != nil {
		t.Fatal(err)
	}
	b.Sim.Poke("en", 1)
	b.StartClock()
	b.Advance(20) // cnt = 25
	b.StopClock()

	// Mask a region on SLR2 that does NOT include cnt's frame on SLR0.
	region := Region{Name: "dyn", SLR: 2, Row: 0, Col: 0, Rows: 1, Cols: 125}
	b.SetGSRMask(&region)
	b.ApplyGSR()
	if v, _ := b.Sim.Peek("cnt"); v != 25 {
		t.Errorf("masked GSR reset cnt to %d; it lies outside the mask", v)
	}

	// The trap: while the mask is set, reading cnt's frame returns zeros.
	data, err := b.ReadFrame(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := getBits(data, 16, 8); got != 0 {
		t.Errorf("masked readback returned live data %d; hardware would not", got)
	}
	if !b.GSRMasked() {
		t.Error("GSRMasked() = false with mask set")
	}

	// Zoomie's fix: clear the mask before readback (§4.7).
	b.SetGSRMask(nil)
	data, err = b.ReadFrame(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := getBits(data, 16, 8); got != 25 {
		t.Errorf("readback after clearing mask = %d, want 25", got)
	}
}

func TestPutGetBitsRoundTrip(t *testing.T) {
	frame := make([]uint32, FrameWords)
	putBits(frame, 37, 13, 0x1abc&0x1fff)
	if got := getBits(frame, 37, 13); got != 0x1abc&0x1fff {
		t.Errorf("roundtrip = %#x", got)
	}
	// Writing zero clears previously set bits.
	putBits(frame, 37, 13, 0)
	if got := getBits(frame, 37, 13); got != 0 {
		t.Errorf("clear failed: %#x", got)
	}
}
