// Package fpga models a Xilinx UltraScale+-style multi-chiplet FPGA at the
// level of detail Zoomie's host software needs: Super Logic Regions (SLRs)
// with their own configuration controllers, a tile grid with typed
// resources, configuration frames addressing the state plane, gatable
// global clocks, and the global set-reset (GSR) machinery with its mask
// register.
//
// Functional execution of a loaded design is delegated to the RTL
// simulator: the board holds a cycle-accurate instance of the design and a
// StateMap that locates every register and memory bit in (SLR, frame,
// bit) coordinates, so configuration reads and writes move through real
// frame addressing exactly as readback does on hardware.
package fpga

import "fmt"

// Resource enumerates the FPGA resource classes tracked by the toolchain.
type Resource int

const (
	LUT Resource = iota
	LUTRAM
	FF
	BRAM
	numResources
)

var resourceNames = [...]string{"LUT", "LUTRAM", "FF", "BRAM"}

func (r Resource) String() string {
	if r >= 0 && int(r) < len(resourceNames) {
		return resourceNames[r]
	}
	return fmt.Sprintf("Resource(%d)", int(r))
}

// Resources returns all resource classes in display order.
func Resources() []Resource { return []Resource{LUT, LUTRAM, FF, BRAM} }

// ResourceVec is a count per resource class.
type ResourceVec [numResources]int

// Add accumulates o into v.
func (v *ResourceVec) Add(o ResourceVec) {
	for i := range v {
		v[i] += o[i]
	}
}

// Scale returns v with every component multiplied by k.
func (v ResourceVec) Scale(k int) ResourceVec {
	for i := range v {
		v[i] *= k
	}
	return v
}

// Fits reports whether v fits within capacity c component-wise.
func (v ResourceVec) Fits(c ResourceVec) bool {
	for i := range v {
		if v[i] > c[i] {
			return false
		}
	}
	return true
}

// FrameWords is the number of 32-bit words in one configuration frame,
// matching the UltraScale architecture's 93-word frames.
const FrameWords = 93

// FrameBits is the number of state bits one frame can address.
const FrameBits = FrameWords * 32

// SLR is one chiplet: a complete FPGA die with its own configuration
// microcontroller, resource capacity, and frame address space.
type SLR struct {
	Index    int
	Rows     int // tile rows
	Cols     int // tile columns
	Frames   int // configuration frames in this SLR
	Capacity ResourceVec
}

// Device describes a multi-SLR FPGA card.
type Device struct {
	Name    string
	SLRs    []*SLR
	Primary int // index of the primary (master) SLR
}

// Capacity returns the whole-device resource capacity.
func (d *Device) Capacity() ResourceVec {
	var total ResourceVec
	for _, s := range d.SLRs {
		total.Add(s.Capacity)
	}
	return total
}

// TotalFrames returns the number of configuration frames across all SLRs.
func (d *Device) TotalFrames() int {
	n := 0
	for _, s := range d.SLRs {
		n += s.Frames
	}
	return n
}

// Hops returns the number of BOUT ring hops needed to reach the given SLR
// from the primary. The SLR microcontrollers form a unidirectional ring
// rooted at the primary; each empty BOUT write advances one hop (§4.4).
func (d *Device) Hops(slr int) int {
	if slr == d.Primary {
		return 0
	}
	// Ring order: primary, then ascending indices skipping the primary.
	hop := 0
	for i := 0; i < len(d.SLRs); i++ {
		idx := (d.Primary + 1 + i) % len(d.SLRs)
		hop++
		if idx == slr {
			return hop
		}
	}
	panic(fmt.Sprintf("fpga: no SLR %d on %s", slr, d.Name))
}

func mkSLR(index, rows, cols int, capacity ResourceVec) *SLR {
	return &SLR{
		Index:    index,
		Rows:     rows,
		Cols:     cols,
		Frames:   rows * cols, // one frame per tile: a deliberate simplification
		Capacity: capacity,
	}
}

// slrCapacityU200 is one U200 SLR's capacity. The device totals are derived
// from the utilization percentages of the paper's Table 2, so that a design
// using the paper's absolute resource counts reproduces the paper's
// percentages exactly.
var slrCapacityU200 = ResourceVec{
	LUT:    385920,  // 3 SLRs -> 1,157,760 total (1,103,572 / 95.32%)
	LUTRAM: 201376,  // 3 SLRs -> 604,128 total (54,128 / 8.96%)
	FF:     8046080, // 3 SLRs -> 24,138,240 total (12,894,858 / 53.42%)
	BRAM:   720,     // 3 SLRs -> 2,160 total (2,120 / 98.19%)
}

// NewU200 builds an Alveo U200 model: three SLRs, primary in the middle
// (SLR1), as on the real card.
func NewU200() *Device {
	d := &Device{Name: "xcu200", Primary: 1}
	for i := 0; i < 3; i++ {
		d.SLRs = append(d.SLRs, mkSLR(i, 160, 125, slrCapacityU200))
	}
	return d
}

// NewU250 builds an Alveo U250 model: four SLRs. Used by the §4.5
// hypothesis-validation experiment showing the final SLR needs three BOUT
// pulses.
func NewU250() *Device {
	d := &Device{Name: "xcu250", Primary: 1}
	for i := 0; i < 4; i++ {
		d.SLRs = append(d.SLRs, mkSLR(i, 160, 125, slrCapacityU200))
	}
	return d
}

// Region is a rectangular reconfigurable area inside one SLR. VTI reserves
// one region per iterated partition; readback optimization scans only the
// frames of the MUT's regions.
type Region struct {
	Name string
	SLR  int
	Row  int
	Col  int
	Rows int
	Cols int
}

// FrameRange returns the half-open frame-address interval [lo, hi) covered
// by the region within its SLR, under the one-frame-per-tile layout where
// frames are numbered row-major.
func (r Region) FrameRange(dev *Device) (lo, hi int) {
	slr := dev.SLRs[r.SLR]
	lo = r.Row*slr.Cols + r.Col
	hi = (r.Row+r.Rows-1)*slr.Cols + r.Col + r.Cols
	if hi > slr.Frames {
		hi = slr.Frames
	}
	return lo, hi
}

// Tiles returns the number of tiles in the region.
func (r Region) Tiles() int { return r.Rows * r.Cols }

// Capacity returns the resources available inside the region, assuming
// resources are spread uniformly over the SLR's tiles.
func (r Region) Capacity(dev *Device) ResourceVec {
	slr := dev.SLRs[r.SLR]
	total := slr.Rows * slr.Cols
	var c ResourceVec
	for i := range c {
		c[i] = slr.Capacity[i] * r.Tiles() / total
	}
	return c
}

// Contains reports whether the region contains the tile (row, col).
func (r Region) Contains(slr, row, col int) bool {
	return slr == r.SLR &&
		row >= r.Row && row < r.Row+r.Rows &&
		col >= r.Col && col < r.Col+r.Cols
}

// Overlaps reports whether two regions share any tile.
func (r Region) Overlaps(o Region) bool {
	if r.SLR != o.SLR {
		return false
	}
	return r.Row < o.Row+o.Rows && o.Row < r.Row+r.Rows &&
		r.Col < o.Col+o.Cols && o.Col < r.Col+r.Cols
}
