package fpga

import "testing"

func TestU200Geometry(t *testing.T) {
	d := NewU200()
	if len(d.SLRs) != 3 {
		t.Fatalf("U200 has %d SLRs, want 3", len(d.SLRs))
	}
	if d.Primary != 1 {
		t.Errorf("U200 primary SLR = %d, want 1", d.Primary)
	}
	// Table 2 derivation: paper resource counts must land on paper
	// utilization percentages against our capacity model.
	capTotal := d.Capacity()
	checks := []struct {
		res    Resource
		used   int
		want   float64 // percent
		within float64
	}{
		{LUT, 1103572, 95.32, 0.05},
		{LUTRAM, 54128, 8.96, 0.05},
		{FF, 12894858, 53.42, 0.05},
		{BRAM, 2120, 98.19, 0.05},
	}
	for _, c := range checks {
		got := 100 * float64(c.used) / float64(capTotal[c.res])
		if got < c.want-c.within || got > c.want+c.within {
			t.Errorf("%s: %d/%d = %.2f%%, want %.2f%%", c.res, c.used, capTotal[c.res], got, c.want)
		}
	}
}

func TestU250HasFourSLRs(t *testing.T) {
	d := NewU250()
	if len(d.SLRs) != 4 {
		t.Fatalf("U250 has %d SLRs, want 4", len(d.SLRs))
	}
}

func TestHopsRingTopology(t *testing.T) {
	u200 := NewU200()
	// Primary is SLR1; ring: 1 -> 2 -> 0.
	if h := u200.Hops(1); h != 0 {
		t.Errorf("hops to primary = %d, want 0", h)
	}
	if h := u200.Hops(2); h != 1 {
		t.Errorf("hops to SLR2 = %d, want 1", h)
	}
	if h := u200.Hops(0); h != 2 {
		t.Errorf("hops to SLR0 = %d, want 2", h)
	}
	// §4.5: on a U250 the final SLR is reached by pulsing BOUT 3 times.
	u250 := NewU250()
	maxHops := 0
	for i := range u250.SLRs {
		if h := u250.Hops(i); h > maxHops {
			maxHops = h
		}
	}
	if maxHops != 3 {
		t.Errorf("U250 max hops = %d, want 3", maxHops)
	}
}

func TestResourceVec(t *testing.T) {
	a := ResourceVec{LUT: 10, FF: 20}
	b := ResourceVec{LUT: 5, FF: 5, BRAM: 1}
	a.Add(b)
	if a[LUT] != 15 || a[FF] != 25 || a[BRAM] != 1 {
		t.Errorf("Add: %v", a)
	}
	if got := b.Scale(3); got[LUT] != 15 || got[BRAM] != 3 {
		t.Errorf("Scale: %v", got)
	}
	if !b.Fits(a) {
		t.Error("b should fit in a")
	}
	big := ResourceVec{LUTRAM: 1000}
	if big.Fits(a) {
		t.Error("big should not fit in a")
	}
}

func TestRegionFrameRange(t *testing.T) {
	d := NewU200()
	r := Region{Name: "p0", SLR: 0, Row: 2, Col: 3, Rows: 2, Cols: 4}
	lo, hi := r.FrameRange(d)
	cols := d.SLRs[0].Cols
	if lo != 2*cols+3 {
		t.Errorf("lo = %d, want %d", lo, 2*cols+3)
	}
	if hi != 3*cols+7 {
		t.Errorf("hi = %d, want %d", hi, 3*cols+7)
	}
	if r.Tiles() != 8 {
		t.Errorf("tiles = %d, want 8", r.Tiles())
	}
}

func TestRegionCapacityProportional(t *testing.T) {
	d := NewU200()
	slr := d.SLRs[0]
	half := Region{SLR: 0, Row: 0, Col: 0, Rows: slr.Rows / 2, Cols: slr.Cols}
	c := half.Capacity(d)
	for _, res := range Resources() {
		want := slr.Capacity[res] / 2
		if c[res] != want {
			t.Errorf("%s: half-SLR capacity %d, want %d", res, c[res], want)
		}
	}
}

func TestRegionContainsAndOverlaps(t *testing.T) {
	a := Region{SLR: 0, Row: 0, Col: 0, Rows: 4, Cols: 4}
	b := Region{SLR: 0, Row: 3, Col: 3, Rows: 4, Cols: 4}
	c := Region{SLR: 0, Row: 4, Col: 4, Rows: 2, Cols: 2}
	other := Region{SLR: 1, Row: 0, Col: 0, Rows: 4, Cols: 4}
	if !a.Contains(0, 3, 3) || a.Contains(0, 4, 0) || a.Contains(1, 0, 0) {
		t.Error("Contains wrong")
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c do not overlap")
	}
	if a.Overlaps(other) {
		t.Error("regions on different SLRs never overlap")
	}
}

func TestFrameAllocator(t *testing.T) {
	a := NewFrameAllocator(0, 10, 12) // two frames
	addr1, err := a.AllocBits(FrameBits - 8)
	if err != nil || addr1.Frame != 10 || addr1.Bit != 0 {
		t.Fatalf("alloc1 = %+v, %v", addr1, err)
	}
	// 8 bits left in frame 10; a 16-bit allocation must move to frame 11.
	addr2, err := a.AllocBits(16)
	if err != nil || addr2.Frame != 11 || addr2.Bit != 0 {
		t.Fatalf("alloc2 = %+v, %v", addr2, err)
	}
	if _, err := a.AllocBits(FrameBits); err == nil {
		t.Error("allocation beyond region should fail")
	}
	if _, err := a.AllocBits(FrameBits + 1); err == nil {
		t.Error("oversized allocation should fail")
	}
}

func TestFrameAllocatorWholeFrames(t *testing.T) {
	a := NewFrameAllocator(1, 0, 10)
	if _, err := a.AllocBits(5); err != nil {
		t.Fatal(err)
	}
	start, err := a.AllocFrames(3)
	if err != nil || start != 1 {
		t.Fatalf("AllocFrames = %d, %v; want 1", start, err)
	}
	if _, err := a.AllocFrames(20); err == nil {
		t.Error("over-allocation should fail")
	}
}

func TestStateMapLookupsAndFrames(t *testing.T) {
	sm := NewStateMap()
	if err := sm.AddReg(RegLoc{Name: "a.r", Width: 8, Addr: BitAddr{SLR: 0, Frame: 5, Bit: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := sm.AddReg(RegLoc{Name: "b.r", Width: 8, Addr: BitAddr{SLR: 2, Frame: 7, Bit: 8}}); err != nil {
		t.Fatal(err)
	}
	if err := sm.AddMem(MemLoc{Name: "m", Width: 32, Depth: 200, SLR: 0, StartFrame: 100}); err != nil {
		t.Fatal(err)
	}
	if err := sm.AddReg(RegLoc{Name: "a.r", Width: 8}); err == nil {
		t.Error("duplicate register accepted")
	}
	if err := sm.AddReg(RegLoc{Name: "wide", Width: 32, Addr: BitAddr{Bit: FrameBits - 8}}); err == nil {
		t.Error("frame-spanning register accepted")
	}
	if _, ok := sm.Reg("a.r"); !ok {
		t.Error("Reg lookup failed")
	}
	if _, ok := sm.Mem("m"); !ok {
		t.Error("Mem lookup failed")
	}
	if _, ok := sm.Reg("nosuch"); ok {
		t.Error("phantom register")
	}

	all := sm.FramesTouched(nil)
	// mem: 32-bit words, 93 per frame -> 200 words = 3 frames (100..102).
	if got := all[0]; len(got) != 4 || got[0] != 5 || got[3] != 102 {
		t.Errorf("SLR0 frames = %v", got)
	}
	if got := all[2]; len(got) != 1 || got[0] != 7 {
		t.Errorf("SLR2 frames = %v", got)
	}
	only := sm.FramesTouched(map[string]bool{"b.r": true})
	if len(only) != 1 || len(only[2]) != 1 {
		t.Errorf("filtered frames = %v", only)
	}
}

func TestMemLocAddressing(t *testing.T) {
	m := MemLoc{Name: "m", Width: 64, Depth: 100, SLR: 1, StartFrame: 10}
	wpf := m.WordsPerFrame()
	if wpf != FrameBits/64 {
		t.Fatalf("words per frame = %d", wpf)
	}
	a0 := m.WordAddr(0)
	if a0.Frame != 10 || a0.Bit != 0 {
		t.Errorf("word 0 at %+v", a0)
	}
	aw := m.WordAddr(wpf + 2)
	if aw.Frame != 11 || aw.Bit != 128 {
		t.Errorf("word %d at %+v", wpf+2, aw)
	}
	if m.FrameCount() != (100+wpf-1)/wpf {
		t.Errorf("frame count = %d", m.FrameCount())
	}
}
