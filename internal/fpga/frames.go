package fpga

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// FrameCRC computes the CRC32 (Castagnoli) checksum of one frame's words,
// the integrity check the resilient JTAG transport uses for
// verify-after-write: the expected CRC of the data handed to the cable is
// compared against the CRC of the frame read back, so any in-flight
// corruption — bit flips, dropped writes, duplicated writes whose
// retransmission corrupted — is detected before the debugger trusts the
// state. Plays the role of the CRC register real configuration logic
// checks per frame.
func FrameCRC(data []uint32) uint32 {
	var buf [4]byte
	var sum uint32
	for _, w := range data {
		binary.LittleEndian.PutUint32(buf[:], w)
		sum = crc32.Update(sum, crcTable, buf[:])
	}
	return sum
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// BitAddr locates a run of state bits in the configuration plane.
type BitAddr struct {
	SLR   int
	Frame int // frame address within the SLR
	Bit   int // starting bit offset within the frame [0, FrameBits)
}

// RegLoc places one RTL register: Width bits starting at Addr. A register
// never spans frames (the allocator guarantees it), matching how flip-flop
// state of one slice lives in one frame on hardware.
type RegLoc struct {
	Name  string
	Width int
	Addr  BitAddr
}

// MemLoc places one RTL memory: words are packed Width bits at a time,
// FrameBits/Width words per frame, starting at frame StartFrame and
// continuing through consecutive frames.
type MemLoc struct {
	Name       string
	Width      int
	Depth      int
	SLR        int
	StartFrame int
}

// WordsPerFrame returns how many memory words fit in one frame.
func (m MemLoc) WordsPerFrame() int { return FrameBits / m.Width }

// FrameCount returns the number of frames the memory occupies.
func (m MemLoc) FrameCount() int {
	wpf := m.WordsPerFrame()
	return (m.Depth + wpf - 1) / wpf
}

// WordAddr returns the frame and bit offset of word i.
func (m MemLoc) WordAddr(i int) BitAddr {
	wpf := m.WordsPerFrame()
	return BitAddr{
		SLR:   m.SLR,
		Frame: m.StartFrame + i/wpf,
		Bit:   (i % wpf) * m.Width,
	}
}

// StateMap is the logic-location metadata the toolchain emits alongside a
// bitstream: where every register and memory of the elaborated design
// lives in the configuration plane. It is what lets Zoomie's host software
// "parse the binary data and match it up with names of registers and
// memories in the RTL description" (§3.2).
type StateMap struct {
	Regs []RegLoc
	Mems []MemLoc

	regByName map[string]int
	memByName map[string]int
}

// NewStateMap builds an empty state map.
func NewStateMap() *StateMap {
	return &StateMap{
		regByName: make(map[string]int),
		memByName: make(map[string]int),
	}
}

// AddReg records a register placement.
func (sm *StateMap) AddReg(loc RegLoc) error {
	if _, dup := sm.regByName[loc.Name]; dup {
		return fmt.Errorf("fpga: duplicate register placement %q", loc.Name)
	}
	if loc.Addr.Bit+loc.Width > FrameBits {
		return fmt.Errorf("fpga: register %q spans a frame boundary", loc.Name)
	}
	sm.regByName[loc.Name] = len(sm.Regs)
	sm.Regs = append(sm.Regs, loc)
	return nil
}

// AddMem records a memory placement.
func (sm *StateMap) AddMem(loc MemLoc) error {
	if _, dup := sm.memByName[loc.Name]; dup {
		return fmt.Errorf("fpga: duplicate memory placement %q", loc.Name)
	}
	if loc.Width <= 0 || loc.Width > FrameBits {
		return fmt.Errorf("fpga: memory %q has unplaceable width %d", loc.Name, loc.Width)
	}
	sm.memByName[loc.Name] = len(sm.Mems)
	sm.Mems = append(sm.Mems, loc)
	return nil
}

// Reg looks up a register placement by flat name.
func (sm *StateMap) Reg(name string) (RegLoc, bool) {
	i, ok := sm.regByName[name]
	if !ok {
		return RegLoc{}, false
	}
	return sm.Regs[i], true
}

// Mem looks up a memory placement by flat name.
func (sm *StateMap) Mem(name string) (MemLoc, bool) {
	i, ok := sm.memByName[name]
	if !ok {
		return MemLoc{}, false
	}
	return sm.Mems[i], true
}

// FramesTouched returns, per SLR, the sorted list of frame addresses that
// hold any state of the named signals/memories. Passing nil names selects
// everything. This drives the SLR-aware readback optimization: scan only
// the frames that matter.
func (sm *StateMap) FramesTouched(names map[string]bool) map[int][]int {
	perSLR := make(map[int]map[int]bool)
	touch := func(slr, frame int) {
		if perSLR[slr] == nil {
			perSLR[slr] = make(map[int]bool)
		}
		perSLR[slr][frame] = true
	}
	for _, r := range sm.Regs {
		if names == nil || names[r.Name] {
			touch(r.Addr.SLR, r.Addr.Frame)
		}
	}
	for _, m := range sm.Mems {
		if names == nil || names[m.Name] {
			for f := 0; f < m.FrameCount(); f++ {
				touch(m.SLR, m.StartFrame+f)
			}
		}
	}
	out := make(map[int][]int, len(perSLR))
	for slr, frames := range perSLR {
		lst := make([]int, 0, len(frames))
		for f := range frames {
			lst = append(lst, f)
		}
		sort.Ints(lst)
		out[slr] = lst
	}
	return out
}

// FrameAllocator hands out frame space inside a region sequentially. The
// placer uses one allocator per region (and one for the static area of
// each SLR).
type FrameAllocator struct {
	slr     int
	next    int // next frame address
	last    int // last frame address (inclusive)
	bitsUse int // bits used in the current frame
}

// NewFrameAllocator allocates within [lo, hi) of the given SLR.
func NewFrameAllocator(slr, lo, hi int) *FrameAllocator {
	return &FrameAllocator{slr: slr, next: lo, last: hi - 1}
}

// AllocBits reserves width contiguous bits that do not cross a frame
// boundary, returning their address.
func (a *FrameAllocator) AllocBits(width int) (BitAddr, error) {
	if width > FrameBits {
		return BitAddr{}, fmt.Errorf("fpga: allocation of %d bits exceeds frame size", width)
	}
	if a.bitsUse+width > FrameBits {
		a.next++
		a.bitsUse = 0
	}
	if a.next > a.last {
		return BitAddr{}, fmt.Errorf("fpga: SLR %d region frames exhausted", a.slr)
	}
	addr := BitAddr{SLR: a.slr, Frame: a.next, Bit: a.bitsUse}
	a.bitsUse += width
	return addr, nil
}

// AllocFrames reserves n whole frames, returning the first address.
func (a *FrameAllocator) AllocFrames(n int) (int, error) {
	if a.bitsUse > 0 {
		a.next++
		a.bitsUse = 0
	}
	if a.next+n-1 > a.last {
		return 0, fmt.Errorf("fpga: SLR %d region frames exhausted", a.slr)
	}
	start := a.next
	a.next += n
	return start, nil
}

// Used returns how many frames have been consumed (fully or partially).
func (a *FrameAllocator) Used(lo int) int {
	used := a.next - lo
	if a.bitsUse > 0 {
		used++
	}
	return used
}
