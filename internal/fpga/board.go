package fpga

import (
	"fmt"

	"zoomie/internal/rtl"
	"zoomie/internal/sim"
)

// Image is everything the toolchain hands to the board: the elaborated
// design, its clocking, the state-to-frame map, resource accounting, and
// the reserved partition regions. It plays the role of the bitstream plus
// the logic-location metadata files of a vendor flow.
type Image struct {
	Design *rtl.Flat
	Clocks []sim.ClockSpec
	Map    *StateMap
	Device *Device

	Usage   ResourceVec
	Regions []Region // reserved reconfigurable regions (VTI partitions)

	// Gates maps a clock-domain name to the flat name of the 1-bit
	// in-design signal that gates it (the Debug Controller's clock
	// enable). Domains not listed are ungated.
	Gates map[string]string
}

// frameItem is one piece of state intersecting a configuration frame.
type frameItem struct {
	// For registers: reg is non-empty. For memories: mem plus the word
	// range [w0, w1) stored in this frame.
	reg    string
	width  int
	bitOff int

	mem    string
	memLoc MemLoc
	w0, w1 int
}

// Board is a configured FPGA card: the device, the loaded image, and the
// running design state. All state access from the host side goes through
// frame reads and writes, as it does over JTAG on hardware.
type Board struct {
	Device *Device
	Image  *Image
	Sim    *sim.Simulator

	frames map[[2]int][]frameItem // (slr, frame) -> state items

	clockRunning bool
	gsrMask      *Region // non-nil: GSR and readback restricted to region
}

// NewBoard creates an unconfigured board.
func NewBoard(dev *Device) *Board { return &Board{Device: dev} }

// Configure performs full configuration: it instantiates the design,
// applies GSR (all registers to their init values) and leaves the clock
// stopped, which is the state a device is in right before the "start the
// clock and raise GSR" step of the configuration flow (§4.1).
func (b *Board) Configure(img *Image) error {
	if img.Device != nil && img.Device.Name != b.Device.Name {
		return fmt.Errorf("fpga: image built for %s, board is %s", img.Device.Name, b.Device.Name)
	}
	s, err := sim.New(img.Design, img.Clocks)
	if err != nil {
		return fmt.Errorf("fpga: configure: %w", err)
	}
	for domain, gate := range img.Gates {
		if err := s.GateClock(domain, gate); err != nil {
			return fmt.Errorf("fpga: configure: %w", err)
		}
	}
	b.Image = img
	b.Sim = s
	b.clockRunning = false
	b.gsrMask = nil
	if err := b.indexFrames(); err != nil {
		return err
	}
	// Clock stopped until started by the configuration sequence.
	for _, c := range img.Clocks {
		s.SetHostGate(c.Name, false)
	}
	return nil
}

func (b *Board) indexFrames() error {
	b.frames = make(map[[2]int][]frameItem)
	sm := b.Image.Map
	for _, r := range sm.Regs {
		if r.Addr.SLR < 0 || r.Addr.SLR >= len(b.Device.SLRs) {
			return fmt.Errorf("fpga: register %q placed on missing SLR %d", r.Name, r.Addr.SLR)
		}
		if r.Addr.Frame >= b.Device.SLRs[r.Addr.SLR].Frames {
			return fmt.Errorf("fpga: register %q placed beyond frame space", r.Name)
		}
		key := [2]int{r.Addr.SLR, r.Addr.Frame}
		b.frames[key] = append(b.frames[key], frameItem{
			reg: r.Name, width: r.Width, bitOff: r.Addr.Bit,
		})
	}
	for _, m := range sm.Mems {
		wpf := m.WordsPerFrame()
		for f := 0; f < m.FrameCount(); f++ {
			w0 := f * wpf
			w1 := w0 + wpf
			if w1 > m.Depth {
				w1 = m.Depth
			}
			key := [2]int{m.SLR, m.StartFrame + f}
			b.frames[key] = append(b.frames[key], frameItem{
				mem: m.Name, memLoc: m, w0: w0, w1: w1,
			})
		}
	}
	return nil
}

// Configured reports whether an image is loaded.
func (b *Board) Configured() bool { return b.Image != nil }

// StartClock begins free-running execution (models the special-register
// write that starts the clock after configuration).
func (b *Board) StartClock() {
	if b.Sim == nil {
		return
	}
	b.clockRunning = true
	for _, c := range b.Image.Clocks {
		b.Sim.SetHostGate(c.Name, true)
	}
}

// StopClock halts all clock domains from the host side.
func (b *Board) StopClock() {
	if b.Sim == nil {
		return
	}
	b.clockRunning = false
	for _, c := range b.Image.Clocks {
		b.Sim.SetHostGate(c.Name, false)
	}
}

// ClockRunning reports whether the global clock is started.
func (b *Board) ClockRunning() bool { return b.clockRunning }

// Advance models wall-clock time passing while the FPGA runs freely: the
// design executes n ticks (domains that are gated, by the host or by the
// in-design Debug Controller, hold still exactly as on hardware).
func (b *Board) Advance(n int) {
	if b.Sim == nil {
		return
	}
	b.Sim.Run(n)
}

// SetGSRMask restricts GSR (and, until cleared, readback) to a region, as
// partial reconfiguration does. Pass nil to clear the mask. Hardware does
// not restore this register automatically after partial reconfiguration —
// Zoomie must clear it before readback (§4.7), and this model preserves
// that trap: masked readback returns zeroed frames outside the region.
func (b *Board) SetGSRMask(r *Region) { b.gsrMask = r }

// GSRMasked reports whether a GSR mask is currently set.
func (b *Board) GSRMasked() bool { return b.gsrMask != nil }

// ApplyGSR pulses the global set-reset: registers return to their init
// values. With a mask set, only state in frames of the masked region
// resets.
func (b *Board) ApplyGSR() {
	if b.Sim == nil {
		return
	}
	var lo, hi int
	if b.gsrMask != nil {
		lo, hi = b.gsrMask.FrameRange(b.Device)
	}
	for _, r := range b.Image.Design.Registers {
		if b.gsrMask != nil {
			loc, ok := b.Image.Map.Reg(r.Sig.Name)
			if !ok || loc.Addr.SLR != b.gsrMask.SLR || loc.Addr.Frame < lo || loc.Addr.Frame >= hi {
				continue
			}
		}
		// Registers are architecturally writable state; wires resettle below.
		if err := b.Sim.Poke(r.Sig.Name, r.Init); err != nil {
			panic(fmt.Sprintf("fpga: GSR poke %s: %v", r.Sig.Name, err))
		}
	}
	b.Sim.Settle()
}

// ReadFrame serializes one configuration frame of one SLR from the live
// design state. While a GSR mask is active, frames outside the masked
// region read back as zeros — the hardware trap that forces Zoomie to
// clear the mask first.
func (b *Board) ReadFrame(slr, frame int) ([]uint32, error) {
	if b.Sim == nil {
		return nil, fmt.Errorf("fpga: board not configured")
	}
	if slr < 0 || slr >= len(b.Device.SLRs) {
		return nil, fmt.Errorf("fpga: no SLR %d", slr)
	}
	if frame < 0 || frame >= b.Device.SLRs[slr].Frames {
		return nil, fmt.Errorf("fpga: SLR %d has no frame %d", slr, frame)
	}
	data := make([]uint32, FrameWords)
	if b.gsrMask != nil {
		lo, hi := b.gsrMask.FrameRange(b.Device)
		if slr != b.gsrMask.SLR || frame < lo || frame >= hi {
			return data, nil // masked: reads as zeros
		}
	}
	for _, item := range b.frames[[2]int{slr, frame}] {
		if item.reg != "" {
			v, err := b.Sim.Peek(item.reg)
			if err != nil {
				return nil, err
			}
			putBits(data, item.bitOff, item.width, v)
			continue
		}
		for w := item.w0; w < item.w1; w++ {
			v, err := b.Sim.PeekMem(item.mem, w)
			if err != nil {
				return nil, err
			}
			addr := item.memLoc.WordAddr(w)
			putBits(data, addr.Bit, item.memLoc.Width, v)
		}
	}
	return data, nil
}

// WriteFrame deserializes one configuration frame into the design state;
// this is the partial-reconfiguration write path used both for resuming
// from snapshots and for mutating state.
func (b *Board) WriteFrame(slr, frame int, data []uint32) error {
	if b.Sim == nil {
		return fmt.Errorf("fpga: board not configured")
	}
	if len(data) != FrameWords {
		return fmt.Errorf("fpga: frame write of %d words, want %d", len(data), FrameWords)
	}
	if slr < 0 || slr >= len(b.Device.SLRs) {
		return fmt.Errorf("fpga: no SLR %d", slr)
	}
	if frame < 0 || frame >= b.Device.SLRs[slr].Frames {
		return fmt.Errorf("fpga: SLR %d has no frame %d", slr, frame)
	}
	for _, item := range b.frames[[2]int{slr, frame}] {
		if item.reg != "" {
			v := getBits(data, item.bitOff, item.width)
			if err := b.Sim.Poke(item.reg, v); err != nil {
				return err
			}
			continue
		}
		for w := item.w0; w < item.w1; w++ {
			addr := item.memLoc.WordAddr(w)
			v := getBits(data, addr.Bit, item.memLoc.Width)
			if err := b.Sim.PokeMem(item.mem, w, v); err != nil {
				return err
			}
		}
	}
	return nil
}

func putBits(frame []uint32, off, width int, v uint64) {
	for i := 0; i < width; i++ {
		bit := off + i
		if v>>uint(i)&1 != 0 {
			frame[bit/32] |= 1 << uint(bit%32)
		} else {
			frame[bit/32] &^= 1 << uint(bit%32)
		}
	}
}

func getBits(frame []uint32, off, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		bit := off + i
		if frame[bit/32]>>uint(bit%32)&1 != 0 {
			v |= 1 << uint(i)
		}
	}
	return v
}
