package obs

import (
	"sync"
	"testing"
)

func TestCounterRegistry(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a")
	if got := r.Counter("a"); got != a {
		t.Fatalf("Counter(a) not stable: %p vs %p", got, a)
	}
	a.Inc()
	a.Add(4)
	if v := a.Load(); v != 5 {
		t.Fatalf("a = %d, want 5", v)
	}
	r.Counter("b").Add(2)
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestReaderDeltas(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a")
	a.Add(100) // before the reader exists: must not appear in deltas
	rd := r.NewReader()

	names, deltas, total := rd.Deltas(nil, nil)
	if total != 0 || len(names) != 0 || len(deltas) != 0 {
		t.Fatalf("first flush not empty: %v %v %d", names, deltas, total)
	}

	a.Add(7)
	b := r.Counter("b") // registered after the reader was primed
	b.Add(3)
	names, deltas, total = rd.Deltas(names[:0], deltas[:0])
	if total != 10 {
		t.Fatalf("total = %d, want 10", total)
	}
	got := map[string]uint64{}
	for i, n := range names {
		got[n] = deltas[i]
	}
	if got["a"] != 7 || got["b"] != 3 {
		t.Fatalf("deltas = %v", got)
	}

	// Idle interval flushes nothing.
	if _, _, total = rd.Deltas(names[:0], deltas[:0]); total != 0 {
		t.Fatalf("idle total = %d, want 0", total)
	}
}

func TestIndependentReaders(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a")
	r1, r2 := r.NewReader(), r.NewReader()
	a.Add(5)
	if _, _, total := r1.Deltas(nil, nil); total != 5 {
		t.Fatalf("r1 total = %d", total)
	}
	a.Add(2)
	// r2 sees both intervals' worth; r1 only the second.
	if _, _, total := r2.Deltas(nil, nil); total != 7 {
		t.Fatalf("r2 total = %d", total)
	}
	if _, _, total := r1.Deltas(nil, nil); total != 2 {
		t.Fatalf("r1 second total = %d", total)
	}
}

func TestConcurrentProducers(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	rd := r.NewReader()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if _, _, total := rd.Deltas(nil, nil); total != workers*per {
		t.Fatalf("total = %d, want %d", total, workers*per)
	}
}

// BenchmarkCounterAdd measures the producer-side cost of one event — the
// number that must stay negligible on the peek/poke hot path, and the
// basis of the ≥1M events/sec aggregation claim (one atomic add per
// event, aggregation cost amortized over the flush interval).
func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkReaderFlush measures one aggregation pass over a registry of
// 64 counters — the per-interval cost a counters stream pays.
func BenchmarkReaderFlush(b *testing.B) {
	r := NewRegistry()
	ctrs := make([]*Counter, 64)
	for i := range ctrs {
		ctrs[i] = r.Counter(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	rd := r.NewReader()
	var names []string
	var deltas []uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctrs[i%len(ctrs)].Inc()
		names, deltas, _ = rd.Deltas(names[:0], deltas[:0])
	}
}
