// Package obs is the always-on observability substrate behind the v3
// counter streams: lock-free counters that producers bump at line rate
// (one atomic add per event — the session actor, the transport, a user
// tap), and delta readers that aggregate whatever accumulated since the
// last flush into a single frame. The design point is FireSim-style
// out-of-band telemetry: millions of events per second on the producer
// side become a handful of wire frames per second, because the wire
// carries per-interval deltas of named counters, never the events
// themselves.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is one monotonically increasing event counter. Adds are a
// single atomic instruction — cheap enough for the peek/poke hot path —
// and never block a reader.
type Counter struct {
	v atomic.Uint64
}

// Add records n events.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc records one event.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the lifetime total.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Registry is a named set of counters. Registration (first Counter call
// for a name) takes a lock; subsequent lookups should be cached by the
// producer, which then pays only the atomic add.
type Registry struct {
	mu       sync.RWMutex
	names    []string
	counters []*Counter
	byName   map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it on first
// use. The returned pointer is stable for the registry's lifetime —
// cache it, don't re-look it up per event.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.byName[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.byName[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.byName[name] = c
	r.names = append(r.names, name)
	r.counters = append(r.counters, c)
	return c
}

// Names returns the registered counter names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := append([]string(nil), r.names...)
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Reader tracks per-counter totals between flushes so each flush yields
// deltas. Each stream gets its own Reader; readers never interfere.
type Reader struct {
	reg  *Registry
	last []uint64
}

// NewReader returns a delta reader starting from the current totals, so
// the first flush reports only events after the stream opened.
func (r *Registry) NewReader() *Reader {
	rd := &Reader{reg: r}
	rd.Deltas(nil, nil) // prime last with current totals
	return rd
}

// Deltas appends the name and delta of every counter that moved since
// the previous call to the given slices (reused across flushes to stay
// allocation-free in steady state) and returns them along with the total
// number of events in this interval. Counters that did not move are
// omitted — an idle system flushes nothing.
func (rd *Reader) Deltas(names []string, deltas []uint64) ([]string, []uint64, uint64) {
	rd.reg.mu.RLock()
	regNames, counters := rd.reg.names, rd.reg.counters
	if len(rd.last) < len(counters) {
		rd.last = append(rd.last, make([]uint64, len(counters)-len(rd.last))...)
	}
	var total uint64
	for i, c := range counters {
		cur := c.Load()
		if d := cur - rd.last[i]; d != 0 {
			names = append(names, regNames[i])
			deltas = append(deltas, d)
			total += d
			rd.last[i] = cur
		}
	}
	rd.reg.mu.RUnlock()
	return names, deltas, total
}
