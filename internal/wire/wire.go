// Package wire is the zoomied debug protocol: a small length-prefixed
// JSON framing plus the request/response/event message set spoken between
// the debug server (internal/server) and its clients (internal/client,
// cmd/zoomie -connect). It is the network analogue of the gdb remote
// serial protocol for Zoomie's debugger — every Session operation of the
// facade has a wire op, so a remote REPL is command-for-command
// equivalent to the in-process one.
//
// The protocol is deliberately boring: one frame = 4-byte big-endian
// length + JSON. Requests carry a client-chosen id echoed by the matching
// response, so clients may pipeline; events (breakpoint hits, idle
// detaches) arrive unsolicited on the same connection for subscribers.
package wire

import (
	"context"
	"errors"
	"fmt"

	"zoomie/internal/dberr"
)

// Version is the newest protocol version this build speaks. The first
// frame on a connection must be an OpHello request carrying the client's
// version; the server answers with min(client, server) as long as the
// client is at least MinVersion, and both sides speak the negotiated
// version thereafter. Clients below MinVersion are refused with
// CodeVersion so they fail fast instead of misparsing.
//
// Version history:
//
//	1 — initial protocol (PR 2/3).
//	2 — batched data plane: OpPeekBatch/OpPokeBatch with Request.Items/
//	    Values and Response.Values, plus typed debugger error codes
//	    (CodeUnknownState … CodeCancelled) that unwrap to dberr
//	    sentinels client-side.
//	3 — binary framing and the stream channel. After the (always-JSON)
//	    hello exchange, a v3-negotiated connection switches both
//	    directions to the pooled varint codec in binary.go: same
//	    4-byte length prefix, but the payload is a tagged binary body
//	    instead of JSON — no reflection, no per-frame allocations on
//	    the peek/poke hot path (see Encoder/Decoder). v3 also adds the
//	    flow-controlled stream ops (OpStreamOpen/Credit/Close) and the
//	    EvtStream event frames that carry aggregated counter deltas and
//	    ILA capture windows server→client. v1/v2 peers negotiate down
//	    and keep speaking length-prefixed JSON byte-for-byte.
const Version = 3

// MinVersion is the oldest protocol version the server still accepts. A
// v1 client negotiates down: batch ops are unavailable (CodeUnknownOp)
// and errors arrive as plain CodeOp, but every v1 op behaves
// identically.
const MinVersion = 1

// Message is the frame envelope: exactly one of Req, Resp, Evt is set,
// discriminated by T.
type Message struct {
	T    string    `json:"t"` // "req" | "resp" | "evt"
	Req  *Request  `json:"req,omitempty"`
	Resp *Response `json:"resp,omitempty"`
	Evt  *Event    `json:"evt,omitempty"`
}

// Message types for Message.T.
const (
	TReq  = "req"
	TResp = "resp"
	TEvt  = "evt"
)

// Operations. Session-scoped ops require Request.Session.
const (
	OpHello     = "hello"     // handshake: Version
	OpAttach    = "attach"    // Design -> Session, Device, Report, Watches
	OpDetach    = "detach"    // Session
	OpRun       = "run"       // Session, N wall ticks
	OpPause     = "pause"     // Session
	OpResume    = "resume"    // Session
	OpStep      = "step"      // Session, N MUT cycles
	OpUntil     = "until"     // Session, N max ticks -> Ran
	OpPeek      = "peek"      // Session, Name -> Value
	OpPoke      = "poke"      // Session, Name, Value
	OpPeekMem   = "peekmem"   // Session, Name, Addr -> Value
	OpPokeMem   = "pokemem"   // Session, Name, Addr, Value
	OpBreak     = "break"     // Session, Name, Value, Mode ("any"|"all")
	OpClearBrk  = "clearbrk"  // Session
	OpAssert    = "assert"    // Session, Name, Enable
	OpSnapSave  = "snapsave"  // Session -> Regs, Mems, Cycles
	OpSnapRest  = "snaprest"  // Session (restores last saved snapshot)
	OpInspect   = "inspect"   // Session, Prefix -> Lines
	OpTrace     = "trace"     // Session, Signals, N -> Trace
	OpInput     = "input"     // Session, Name, Value (top-level input port)
	OpOutput    = "output"    // Session, Name -> Value (top-level output)
	OpSessStat  = "sessstat"  // Session -> Paused, Cycles, ElapsedNS
	OpStatus    = "status"    // -> Stats (server-wide counters)
	OpSubscribe = "subscribe" // Session (0 = all) -> event delivery on

	// Version 2 ops: the batched data plane. The session actor executes
	// the whole batch as one frame plan — one readback (and for pokes one
	// writeback) per SLR — instead of one cable pass per name.
	OpPeekBatch = "peekbatch" // Session, Items -> Values (v2+)
	OpPokeBatch = "pokebatch" // Session, Items (with Value each) (v2+)

	// Version 3 ops: the flow-controlled stream channel, multiplexed on
	// the same connection. A stream pushes server-aggregated observability
	// frames (counter deltas, ILA capture windows) to the client as
	// EvtStream events, credit-gated so a slow client sheds frames
	// (drop-oldest, counted) instead of stalling the session actor.
	OpStreamOpen   = "streamopen"   // Session, Name ("counters"|"ila"), N credits, Value flush-interval-ms -> Stream (v3+)
	OpStreamCredit = "streamcredit" // Stream, N additional credits (v3+)
	OpStreamClose  = "streamclose"  // Stream (v3+)

	// Time-travel ops (v3+): the history engine's record/replay surface.
	// They reuse existing Request/Response fields, so v3 framing carries
	// them without new presence bits.
	OpHistSeek      = "histseek"      // Session, Value target cycle -> Cycles, Ran (timeline id)
	OpHistRewind    = "histrewind"    // Session, N cycles back -> Cycles, Ran (timeline id)
	OpHistRevCont   = "histrevcont"   // Session -> Cycles, Paused (true = trigger found)
	OpHistSave      = "histsave"      // Session, Name -> Regs, Mems, Cycles
	OpHistLoad      = "histload"      // Session, Name -> Cycles
	OpHistStat      = "histstat"      // Session -> Lines
	OpHistTimelines = "histtimelines" // Session -> Lines

	// Fleet ops (v3+): the coordinator's session-mobility and admin
	// surface. StateExport/StateImport are the checkpoint transport for
	// cross-daemon failover: export returns the session's full-scope
	// snapshot plus its encoded history engine as base64 chunks in
	// Response.Lines; import is attach-with-state — the same chunks travel
	// back in Request.Signals and the server restores a brand-new session
	// from them (breakpoints, pause state and time travel intact). Like
	// the history ops they reuse existing fields, so v3 framing carries
	// them without new presence bits.
	OpStateExport = "stateexport" // Session -> Lines (base64 blob chunks), Cycles
	OpStateImport = "stateimport" // Design, Signals (blob chunks) -> Session, Device, Report, Watches
	OpFleetStat   = "fleetstat"   // (zfleet only) -> Lines (per-daemon rows), Stats
	OpFleetDrain  = "fleetdrain"  // (zfleet only) Name daemon addr, Enable -> Lines

	// Compile farm ops (v3+): the content-addressed compile service.
	// Submit names a catalog design and a mode — "vti" (initial compile),
	// "recompile" (canonical debug edit N of the design's partition) or
	// "check" (synchronous warm/cold bit-identity oracle, Lines = [cold,
	// warm]). The response carries the farm job id in Value, the attach
	// acknowledgement in Lines[0], and Ran=1 when the job is already
	// terminal (cache hits resolve without polling). Status with Value=0
	// lists every job; Cancel releases the caller's reference — the job's
	// context is cancelled only when its last holder lets go, and a client
	// disconnect releases everything the connection still holds.
	OpCompileSubmit = "compilesubmit" // Design, Mode, N edit tag -> Value job id, Lines, Ran
	OpCompileStatus = "compilestatus" // Value job id (0 = all) -> Lines, Ran
	OpCompileCancel = "compilecancel" // Value job id -> Lines
)

// Stream kinds for OpStreamOpen's Name field.
const (
	StreamCounters = "counters" // aggregated per-session + server counter deltas
	StreamILA      = "ila"      // completed ILA capture windows, re-armed after upload
	StreamHistory  = "history"  // new history keyframes ([pos, cycle, bytes] rows) for timeline scrubbing
	StreamCompile  = "compile"  // compile job progress: one frame per phase entry / terminal state
)

// Request is a client command. Unused fields stay zero and are omitted.
type Request struct {
	ID      uint64 `json:"id"`
	Op      string `json:"op"`
	Version int    `json:"ver,omitempty"`
	Session uint64 `json:"sid,omitempty"`
	// Client identifies the sending client across TCP connections: the
	// server assigns it in the hello response and a reconnecting client
	// presents it again so replayed requests dedupe. Zero on first hello.
	Client uint64 `json:"client,omitempty"`
	// Seq is the client's per-connection-independent request sequence
	// number. Session actors remember recent (Client, Seq) results so a
	// request replayed after a reconnect returns the original response
	// instead of executing twice.
	Seq     uint64   `json:"seq,omitempty"`
	Design  string   `json:"design,omitempty"`
	Name    string   `json:"name,omitempty"`
	Prefix  string   `json:"prefix,omitempty"`
	Signals []string `json:"signals,omitempty"`
	Value   uint64   `json:"value,omitempty"`
	Addr    int      `json:"addr,omitempty"`
	N       int      `json:"n,omitempty"`
	Mode    string   `json:"mode,omitempty"`
	Enable  bool     `json:"enable,omitempty"`
	// Items carries a batched peek/poke request set (v2+).
	Items []BatchItem `json:"items,omitempty"`
	// Stream addresses an open stream for credit/close ops (v3+).
	Stream uint64 `json:"stream,omitempty"`
}

// BatchItem is one entry of an OpPeekBatch/OpPokeBatch request — the wire
// form of a dbg.PlanItem.
type BatchItem struct {
	Name  string `json:"name"`
	Mem   bool   `json:"mem,omitempty"`
	Addr  int    `json:"addr,omitempty"`
	Value uint64 `json:"value,omitempty"` // poke batches only
}

// Response answers the request with the same ID. Err is nil on success.
type Response struct {
	ID      uint64 `json:"id"`
	Err     *Error `json:"err,omitempty"`
	Version int    `json:"ver,omitempty"`
	Client  uint64 `json:"client,omitempty"` // hello: server-assigned client identity

	Session uint64   `json:"sid,omitempty"`
	Design  string   `json:"design,omitempty"`
	Device  string   `json:"device,omitempty"`
	Report  string   `json:"report,omitempty"`
	Watches []string `json:"watches,omitempty"`

	Value     uint64   `json:"value,omitempty"`
	Values    []uint64 `json:"values,omitempty"` // peekbatch results, item order
	Ran       int      `json:"ran,omitempty"`
	Paused    bool     `json:"paused,omitempty"`
	Cycles    uint64   `json:"cycles,omitempty"`
	ElapsedNS int64    `json:"elapsed_ns,omitempty"`
	Regs      int      `json:"regs,omitempty"`
	Mems      int      `json:"mems,omitempty"`
	Lines     []string `json:"lines,omitempty"`
	Trace     *Trace   `json:"trace,omitempty"`
	Stats     *Stats   `json:"stats,omitempty"`
	// Stream is the server-assigned stream id answering OpStreamOpen (v3+).
	Stream uint64 `json:"stream,omitempty"`
}

// Event is an unsolicited server notification.
type Event struct {
	Kind    string `json:"kind"` // "paused" | "detached" | "shutdown"
	Session uint64 `json:"sid,omitempty"`
	Op      string `json:"op,omitempty"` // the command that surfaced the pause
	Cycles  uint64 `json:"cycles,omitempty"`
	Detail  string `json:"detail,omitempty"`

	// Stream-frame fields (v3+, Kind == EvtStream): one frame carries a
	// whole aggregation window, so millions of trace events/sec become a
	// handful of frames/sec on the wire.
	Stream  uint64 `json:"stream,omitempty"`  // stream id this frame belongs to
	Seq     uint64 `json:"seq,omitempty"`     // per-stream frame sequence number
	Dropped uint64 `json:"dropped,omitempty"` // frames shed under backpressure so far
	Count   uint64 `json:"count,omitempty"`   // raw events aggregated into this frame
	// Counter frames: parallel name/delta arrays of non-zero counters.
	Names  []string `json:"names,omitempty"`
	Deltas []uint64 `json:"deltas,omitempty"`
	// ILA frames: one decoded capture window, Names naming the probes and
	// Rows holding one value per probe per captured cycle.
	Rows [][]uint64 `json:"rows,omitempty"`
}

// Event kinds.
const (
	EvtPaused      = "paused"            // design transitioned running -> paused (breakpoint hit)
	EvtDetached    = "detached"          // session torn down (idle timeout, shutdown)
	EvtShutdown    = "shutdown"          // server is shutting down
	EvtQuarantined = "board_quarantined" // a board failed health checks and left the pool
	EvtMigrated    = "session_migrated"  // a session moved to a fresh board from its last good snapshot
	EvtStream      = "stream"            // one flow-controlled stream frame (v3+)
)

// Trace is a StepTrace flattened for the wire.
type Trace struct {
	Signals []string   `json:"signals"`
	Widths  []int      `json:"widths"`
	Rows    [][]uint64 `json:"rows"`
}

// Stats is the server-wide counter snapshot returned by OpStatus.
type Stats struct {
	SessionsActive int64 `json:"sessions_active"`
	SessionsTotal  int64 `json:"sessions_total"`
	CommandsServed int64 `json:"commands_served"`
	BytesIn        int64 `json:"bytes_in"`
	BytesOut       int64 `json:"bytes_out"`
	Events         int64 `json:"events"`
	EventsDropped  int64 `json:"events_dropped"`
	IdleReaped     int64 `json:"idle_reaped"`
	Interleaved    int64 `json:"interleaved"` // serialized-session violations; must stay 0
	PoolCapacity   int64 `json:"pool_capacity"`
	PoolInUse      int64 `json:"pool_in_use"`
	PoolDenied     int64 `json:"pool_denied"`

	// Robustness counters (PR 3): board health, chaos recovery, client
	// continuity. All zero when fault injection and probing are off.
	PoolQuarantined int64 `json:"pool_quarantined"`  // boards currently quarantined
	Quarantines     int64 `json:"quarantines"`       // boards ejected, lifetime
	Probes          int64 `json:"probes"`            // health probes run
	ProbeFailures   int64 `json:"probe_failures"`    // health probes that failed
	Migrations      int64 `json:"migrations"`        // sessions moved to a fresh board
	MigrationsFail  int64 `json:"migrations_failed"` // migrations that could not complete
	Reconnects      int64 `json:"reconnects"`        // hellos presenting an existing client id
	ReplayHits      int64 `json:"replay_hits"`       // replayed requests answered from cache
	JtagRetries     int64 `json:"jtag_retries"`      // stream executions retried (transients)
	JtagReReads     int64 `json:"jtag_rereads"`      // frames re-read until agreement
	JtagRewrites    int64 `json:"jtag_rewrites"`     // frames rewritten after CRC mismatch
	FaultsInjected  int64 `json:"faults_injected"`   // faults the chaos injectors fired

	// Streaming observability counters (v3).
	StreamsOpened int64 `json:"streams_opened"` // stream channels opened, lifetime
	StreamFrames  int64 `json:"stream_frames"`  // stream frames delivered to clients
	StreamEvents  int64 `json:"stream_events"`  // raw events aggregated into those frames
	StreamDropped int64 `json:"stream_dropped"` // stream frames shed under backpressure
	IlaWindows    int64 `json:"ila_windows"`    // ILA capture windows uploaded and streamed

	// LatencyBuckets counts served commands by handling latency, in
	// cumulative-upper-bound order matching LatencyBounds.
	LatencyBuckets []int64 `json:"latency_us,omitempty"`
}

// LatencyBounds are the upper bounds (microseconds; last is +inf) of
// Stats.LatencyBuckets.
var LatencyBounds = []int64{100, 1000, 10_000, 100_000, 1_000_000, -1}

// Error codes. CodeOp wraps an underlying debugger error whose message is
// surfaced verbatim, keeping remote error text identical to in-process.
const (
	CodeBadRequest    = "bad_request"
	CodeUnknownOp     = "unknown_op"
	CodeUnknownDesign = "unknown_design"
	CodeForbidden     = "forbidden"
	CodeNoSession     = "no_session"
	CodePoolExhausted = "pool_exhausted"
	CodeBusy          = "busy"
	CodeVersion       = "version_mismatch"
	CodeShutdown      = "shutdown"
	CodeOp            = "op_failed"
	CodeTimeout       = "timeout"      // client-side: no response within the call timeout
	CodeConnLost      = "conn_lost"    // client-side: connection died and could not be restored
	CodeBoardFailed   = "board_failed" // board wedged/unrecoverable and no migration possible
	CodeNoStream      = "no_stream"    // stream id unknown on this connection (v3+)

	// Typed debugger error codes (v2+). These refine CodeOp: the message
	// is still the exact server-side error string, but the code lets
	// errors.Is classify the failure client-side through Error.Unwrap.
	CodeUnknownState  = "unknown_state"  // dberr.ErrUnknownState
	CodeIsMemory      = "is_memory"      // dberr.ErrIsMemory
	CodeIsRegister    = "is_register"    // dberr.ErrIsRegister
	CodeOutOfRange    = "out_of_range"   // dberr.ErrOutOfRange
	CodeNotWatched    = "not_watched"    // dberr.ErrNotWatched
	CodeWidthMismatch = "width_mismatch" // dberr.ErrWidthMismatch
	CodePartialBatch  = "partial_batch"  // dberr.ErrPartialBatch
	CodeCancelled     = "cancelled"      // context.Canceled / DeadlineExceeded

	// CodeHistoryHorizon (v3+) refines CodeOp for seeks/rewinds outside
	// recorded history: dberr.ErrHistoryHorizon.
	CodeHistoryHorizon = "history_horizon"

	// CodeOverloaded (v3+): admission control shed the request — the
	// fleet (or a daemon) is at capacity and chose to refuse fast rather
	// than queue. The response's Value field carries a retry-after hint
	// in milliseconds; clients with auto-reconnect retry the attach after
	// a jittered backoff instead of failing. Existing sessions are never
	// shed — only new admissions. Unwraps to dberr.ErrOverloaded.
	CodeOverloaded = "overloaded"
)

// codeSentinel maps typed error codes to the sentinel an unwrapped wire
// error matches with errors.Is — the inverse of CodeFor.
var codeSentinel = map[string]error{
	CodeUnknownState:   dberr.ErrUnknownState,
	CodeIsMemory:       dberr.ErrIsMemory,
	CodeIsRegister:     dberr.ErrIsRegister,
	CodeOutOfRange:     dberr.ErrOutOfRange,
	CodeNotWatched:     dberr.ErrNotWatched,
	CodeWidthMismatch:  dberr.ErrWidthMismatch,
	CodePartialBatch:   dberr.ErrPartialBatch,
	CodeCancelled:      context.Canceled,
	CodeHistoryHorizon: dberr.ErrHistoryHorizon,
	CodeOverloaded:     dberr.ErrOverloaded,
}

// CodeFor classifies a debugger error into its typed wire code, falling
// back to CodeOp for errors with no dberr sentinel. Cancellation wins
// over any other classification so clients can always detect it.
func CodeFor(err error) string {
	if err == nil {
		return ""
	}
	if isCancellation(err) {
		return CodeCancelled
	}
	switch dberr.Sentinel(err) {
	case dberr.ErrUnknownState:
		return CodeUnknownState
	case dberr.ErrIsMemory:
		return CodeIsMemory
	case dberr.ErrIsRegister:
		return CodeIsRegister
	case dberr.ErrOutOfRange:
		return CodeOutOfRange
	case dberr.ErrNotWatched:
		return CodeNotWatched
	case dberr.ErrWidthMismatch:
		return CodeWidthMismatch
	case dberr.ErrPartialBatch:
		return CodePartialBatch
	case dberr.ErrHistoryHorizon:
		return CodeHistoryHorizon
	case dberr.ErrOverloaded:
		return CodeOverloaded
	}
	return CodeOp
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Error is a typed wire error.
type Error struct {
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

// Error returns the bare message: for CodeOp errors this is the exact
// server-side debugger error string, so REPL output matches in-process
// debugging byte for byte.
func (e *Error) Error() string { return e.Msg }

// Unwrap maps typed error codes back onto their sentinels, so
// errors.Is(err, dberr.ErrIsMemory) — or context.Canceled for
// CodeCancelled — works on a wire error exactly as it does on the
// in-process debugger error it encodes.
func (e *Error) Unwrap() error { return codeSentinel[e.Code] }

// Errf builds a typed wire error.
func Errf(code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// IsCode reports whether err is a wire *Error with the given code.
func IsCode(err error, code string) bool {
	e, ok := err.(*Error)
	return ok && e.Code == code
}
