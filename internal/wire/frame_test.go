package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	msgs := []*Message{
		Req(&Request{ID: 1, Op: OpHello, Version: Version}),
		Req(&Request{ID: 2, Op: OpAttach, Design: "counter"}),
		Req(&Request{ID: 3, Op: OpBreak, Session: 7, Name: "q", Value: 1000, Mode: "any"}),
		Resp(&Response{ID: 3, Session: 7, Value: 42, Watches: []string{"q", "pulse"}}),
		Resp(&Response{ID: 4, Err: Errf(CodeNoSession, "no session 9")}),
		Resp(&Response{ID: 5, Trace: &Trace{Signals: []string{"cnt"}, Widths: []int{16}, Rows: [][]uint64{{1}, {2}}}}),
		Evt(&Event{Kind: EvtPaused, Session: 7, Op: OpUntil, Cycles: 999}),
	}
	var buf bytes.Buffer
	written := 0
	for _, m := range msgs {
		n, err := WriteMessage(&buf, m)
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		written += n
	}
	read := 0
	for _, want := range msgs {
		got, n, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		read += n
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
	if written != read {
		t.Fatalf("byte accounting: wrote %d, read %d", written, read)
	}
	if _, _, err := ReadMessage(&buf); err != io.EOF {
		t.Fatalf("empty stream: want io.EOF, got %v", err)
	}
}

func TestReadMessageTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, Req(&Request{ID: 1, Op: OpHello})); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail cleanly: io.EOF only for the empty
	// prefix, io.ErrUnexpectedEOF for any mid-frame cut.
	for i := 0; i < len(full); i++ {
		_, _, err := ReadMessage(bytes.NewReader(full[:i]))
		if i == 0 {
			if err != io.EOF {
				t.Fatalf("prefix 0: want io.EOF, got %v", err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("prefix %d: want ErrUnexpectedEOF, got %v", i, err)
		}
	}
}

func TestReadMessageOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	_, _, err := ReadMessage(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// A huge length prefix must not cause a huge allocation: the reader
	// has no payload to back it, and the error fires before make().
	binary.BigEndian.PutUint32(hdr[:], 0xFFFFFFFF)
	if _, _, err := ReadMessage(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestReadMessageGarbage(t *testing.T) {
	cases := []string{
		"\x00\x00\x00\x00",                // empty frame
		"\x00\x00\x00\x05junk!",           // not JSON
		"\x00\x00\x00\x02{}",              // no type
		"\x00\x00\x00\x0b{\"t\":\"zzz\"}", // unknown type
		"\x00\x00\x00\x0b{\"t\":\"req\"}", // req without body
	}
	for _, c := range cases {
		if _, _, err := ReadMessage(strings.NewReader(c)); err == nil {
			t.Fatalf("garbage %q decoded without error", c)
		}
	}
	// Mixed envelope: a "resp" carrying a req body must be rejected.
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, &Message{T: TResp, Req: &Request{ID: 1}, Resp: &Response{ID: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadMessage(&buf); err == nil {
		t.Fatal("mixed envelope decoded without error")
	}
}

func TestErrorHelpers(t *testing.T) {
	err := Errf(CodePoolExhausted, "pool full: %d boards leased", 4)
	if err.Error() != "pool full: 4 boards leased" {
		t.Fatalf("Error(): %q", err.Error())
	}
	if !IsCode(err, CodePoolExhausted) || IsCode(err, CodeBusy) {
		t.Fatal("IsCode misclassified")
	}
	if IsCode(errors.New("plain"), CodePoolExhausted) {
		t.Fatal("IsCode matched a non-wire error")
	}
}
