package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// codecMessages is a message set spanning every field of every envelope,
// including enum escapes (unknown op/code strings) and boundary values.
func codecMessages() []*Message {
	return []*Message{
		Req(&Request{ID: 1, Op: OpHello, Version: Version, Client: 42, Seq: 7}),
		Req(&Request{ID: 2, Op: OpAttach, Design: "counter"}),
		Req(&Request{ID: 3, Op: OpPeek, Session: 9, Name: "dut.count"}),
		Req(&Request{ID: 4, Op: OpPoke, Session: 9, Name: "dut.count", Value: ^uint64(0)}),
		Req(&Request{ID: 5, Op: OpPeekMem, Session: 9, Name: "mem", Addr: 123}),
		Req(&Request{ID: 6, Op: OpTrace, Session: 9, Signals: []string{"a", "b", "a"}, N: -3}),
		Req(&Request{ID: 7, Op: OpBreak, Session: 9, Name: "x", Value: 1, Mode: "all"}),
		Req(&Request{ID: 8, Op: OpAssert, Session: 9, Name: "x", Enable: true}),
		Req(&Request{ID: 9, Op: OpPeekBatch, Session: 9, Items: []BatchItem{
			{Name: "a"}, {Name: "m", Mem: true, Addr: 4}, {Name: "b", Value: 77},
		}}),
		Req(&Request{ID: 10, Op: "customop", Prefix: "dut.", Stream: 3}),
		Req(&Request{ID: 11, Op: OpStreamOpen, Session: 9, Name: StreamCounters, N: 64, Value: 10}),
		Resp(&Response{ID: 1, Version: 3, Client: 42}),
		Resp(&Response{ID: 2, Session: 9, Design: "counter", Device: "U200", Report: "ok", Watches: []string{"w1", "w2"}}),
		Resp(&Response{ID: 3, Value: 0xdeadbeef}),
		Resp(&Response{ID: 4, Err: Errf(CodeIsMemory, "%q is a memory", "m")}),
		Resp(&Response{ID: 5, Err: Errf("weird_code", "escape hatch")}),
		Resp(&Response{ID: 6, Values: []uint64{1, 0, ^uint64(0)}}),
		Resp(&Response{ID: 7, Ran: -1, Paused: true, Cycles: 100, ElapsedNS: -5}),
		Resp(&Response{ID: 8, Regs: 3, Mems: 2, Lines: []string{"reg a", "mem b"}}),
		Resp(&Response{ID: 9, Trace: &Trace{
			Signals: []string{"clk", "q"},
			Widths:  []int{1, 8},
			Rows:    [][]uint64{{0, 1}, {1, 2}},
		}}),
		Resp(&Response{ID: 10, Stats: &Stats{CommandsServed: 12, LatencyBuckets: []int64{1, 2, 3, 4, 5, 6}}}),
		Resp(&Response{ID: 11, Stream: 3}),
		Evt(&Event{Kind: EvtPaused, Session: 9, Op: OpStep, Cycles: 55, Detail: "breakpoint"}),
		Evt(&Event{Kind: "mystery", Detail: "unknown kind escape"}),
		Evt(&Event{Kind: EvtStream, Stream: 3, Seq: 2, Dropped: 1, Count: 1000,
			Names: []string{"peeks", "pokes"}, Deltas: []uint64{900, 100}}),
		Evt(&Event{Kind: EvtStream, Stream: 4, Seq: 1, Count: 16,
			Names: []string{"p0"}, Rows: [][]uint64{{1}, {2}, {3}}}),
	}
}

// TestBinaryRoundTrip pushes every message shape through the v3 codec
// and requires the decoded form to match the original exactly.
func TestBinaryRoundTrip(t *testing.T) {
	for _, m := range codecMessages() {
		var buf bytes.Buffer
		wn, err := WriteMessageV(&buf, m, 3)
		if err != nil {
			t.Fatalf("encode %+v: %v", m, err)
		}
		if wn != buf.Len() {
			t.Fatalf("reported %d bytes, wrote %d", wn, buf.Len())
		}
		got, rn, err := ReadMessageV(&buf, 3)
		if err != nil {
			t.Fatalf("decode %+v: %v", m, err)
		}
		if rn != wn {
			t.Fatalf("read %d bytes, wrote %d", rn, wn)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip mismatch:\n got %s\nwant %s", dump(got), dump(m))
		}
	}
}

// TestBinaryCrossCodec checks semantic equivalence between the JSON and
// binary codecs: a message encoded in one and re-encoded in the other
// must decode to the same value. This is the property that lets a
// message cross a v2 hop and a v3 hop unchanged.
func TestBinaryCrossCodec(t *testing.T) {
	for _, m := range codecMessages() {
		var jb bytes.Buffer
		if _, err := WriteMessageV(&jb, m, 2); err != nil {
			t.Fatalf("json encode: %v", err)
		}
		viaJSON, _, err := ReadMessageV(&jb, 2)
		if err != nil {
			t.Fatalf("json decode: %v", err)
		}
		var bb bytes.Buffer
		if _, err := WriteMessageV(&bb, viaJSON, 3); err != nil {
			t.Fatalf("binary re-encode: %v", err)
		}
		viaBoth, _, err := ReadMessageV(&bb, 3)
		if err != nil {
			t.Fatalf("binary re-decode: %v", err)
		}
		if !reflect.DeepEqual(viaBoth, viaJSON) {
			t.Errorf("cross-codec mismatch:\n got %s\nwant %s", dump(viaBoth), dump(viaJSON))
		}
	}
}

// TestEncoderCoalescing queues several frames and checks one Flush emits
// a byte stream that decodes back to the same sequence.
func TestEncoderCoalescing(t *testing.T) {
	msgs := codecMessages()
	for _, ver := range []int{2, 3} {
		var buf bytes.Buffer
		enc := NewEncoder(&buf, ver)
		for _, m := range msgs {
			if err := enc.Queue(m); err != nil {
				t.Fatalf("v%d queue: %v", ver, err)
			}
		}
		n, err := enc.Flush()
		if err != nil {
			t.Fatalf("v%d flush: %v", ver, err)
		}
		if n != buf.Len() {
			t.Fatalf("v%d flush reported %d bytes, wrote %d", ver, n, buf.Len())
		}
		dec := NewDecoder(&buf, ver)
		for i, want := range msgs {
			got, _, err := dec.Next()
			if err != nil {
				t.Fatalf("v%d decode frame %d: %v", ver, i, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("v%d frame %d mismatch:\n got %s\nwant %s", ver, i, dump(got), dump(want))
			}
		}
		if _, _, err := dec.Next(); err != io.EOF {
			t.Fatalf("v%d expected EOF after last frame, got %v", ver, err)
		}
	}
}

// TestDecoderReuse checks reuse mode decodes correctly frame by frame
// (each message fully consumed before the next call).
func TestDecoderReuse(t *testing.T) {
	msgs := codecMessages()
	var buf bytes.Buffer
	enc := NewEncoder(&buf, 3)
	for _, m := range msgs {
		if err := enc.Queue(m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf, 3)
	dec.SetReuse(true)
	for i, want := range msgs {
		got, _, err := dec.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame %d mismatch:\n got %s\nwant %s", i, dump(got), dump(want))
		}
	}
}

// TestBinaryDecodeHostile feeds adversarial binary frames: truncations,
// bogus counts, unknown kinds/flags. All must error cleanly.
func TestBinaryDecodeHostile(t *testing.T) {
	var full bytes.Buffer
	if _, err := WriteMessageV(&full, Req(&Request{ID: 9, Op: OpPeekBatch, Session: 1, Items: []BatchItem{{Name: "a"}, {Name: "b", Mem: true, Addr: 2}}}), 3); err != nil {
		t.Fatal(err)
	}
	frame := full.Bytes()
	// Every truncation of a valid frame must fail without panicking.
	for i := 0; i < len(frame); i++ {
		if _, _, err := ReadMessageV(bytes.NewReader(frame[:i]), 3); err == nil {
			t.Fatalf("truncation at %d decoded successfully", i)
		}
	}
	hostile := [][]byte{
		{0, 0, 0, 1, 'X'},                               // unknown kind
		{0, 0, 0, 2, 'Q', 0xFF},                         // truncated varint
		{0, 0, 0, 5, 'Q', 1, 9, 0x80, 0x80},             // unterminated flags varint
		{0, 0, 0, 6, 'Q', 1, 0, 0xFF, 0xFF, 0x03},       // unknown flag bits
		{0, 0, 0, 7, 'E', 6, 0, 0, 0, 0, 0},             // trailing bytes
		{0, 0, 0, 8, 'Q', 1, 9, 0x80, 0x20, 0xFF, 0, 0}, // huge item count
		{0, 0, 0, 5, 'S', 1, 1, 0, 0xFF},                // err code out of table
	}
	for _, h := range hostile {
		if m, _, err := ReadMessageV(bytes.NewReader(h), 3); err == nil {
			t.Fatalf("hostile frame %x decoded to %s", h, dump(m))
		}
	}
}

func dump(m *Message) string {
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, m); err != nil {
		return "<unencodable>"
	}
	return buf.String()[4:]
}

// discard is an io.Writer that fully consumes without retaining, letting
// encode benchmarks measure codec cost alone.
type discard struct{ n int }

func (d *discard) Write(p []byte) (int, error) { d.n += len(p); return len(p), nil }

func benchPeekReq() *Message {
	return Req(&Request{ID: 12345, Op: OpPeek, Session: 3, Client: 7, Seq: 99, Name: "dut.datapath.alu.result"})
}

func benchBatchResp() *Message {
	vals := make([]uint64, 64)
	for i := range vals {
		vals[i] = uint64(i) * 0x9e3779b9
	}
	return Resp(&Response{ID: 12345, Values: vals})
}

func benchmarkEncode(b *testing.B, ver int, m *Message) {
	w := &discard{}
	enc := NewEncoder(w, ver)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(m); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(w.n / b.N))
}

func benchmarkDecode(b *testing.B, ver int, m *Message) {
	var one bytes.Buffer
	enc := NewEncoder(&one, ver)
	if _, err := enc.Encode(m); err != nil {
		b.Fatal(err)
	}
	frame := one.Bytes()
	r := bytes.NewReader(frame)
	dec := NewDecoder(r, ver)
	dec.SetReuse(true)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		dec.Reset(r)
		if _, _, err := dec.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeV2(b *testing.B) {
	b.Run("peek", func(b *testing.B) { benchmarkEncode(b, 2, benchPeekReq()) })
	b.Run("batch64", func(b *testing.B) { benchmarkEncode(b, 2, benchBatchResp()) })
}

func BenchmarkWireEncodeV3(b *testing.B) {
	b.Run("peek", func(b *testing.B) { benchmarkEncode(b, 3, benchPeekReq()) })
	b.Run("batch64", func(b *testing.B) { benchmarkEncode(b, 3, benchBatchResp()) })
}

func BenchmarkWireDecodeV2(b *testing.B) {
	b.Run("peek", func(b *testing.B) { benchmarkDecode(b, 2, benchPeekReq()) })
	b.Run("batch64", func(b *testing.B) { benchmarkDecode(b, 2, benchBatchResp()) })
}

func BenchmarkWireDecodeV3(b *testing.B) {
	b.Run("peek", func(b *testing.B) { benchmarkDecode(b, 3, benchPeekReq()) })
	b.Run("batch64", func(b *testing.B) { benchmarkDecode(b, 3, benchBatchResp()) })
}
