package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadMessage hardens the frame decoder: arbitrary bytes — truncated
// frames, oversized length prefixes, garbage JSON, mixed envelopes — must
// produce a clean error, never a panic and never an allocation beyond
// MaxFrame. Checked-in corpus seeds live in testdata/fuzz/FuzzReadMessage.
func FuzzReadMessage(f *testing.F) {
	// Valid single frames.
	for _, m := range []*Message{
		Req(&Request{ID: 1, Op: OpHello, Version: Version}),
		Req(&Request{ID: 2, Op: OpAttach, Design: "counter"}),
		Resp(&Response{ID: 2, Session: 1, Device: "U200"}),
		Evt(&Event{Kind: EvtPaused, Session: 1, Cycles: 12}),
	} {
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// And its truncations.
		f.Add(buf.Bytes()[:buf.Len()/2])
		f.Add(buf.Bytes()[:4])
	}
	// Adversarial shapes.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte("\x00\x00\x00\x05junk!"))
	f.Add([]byte("\x00\x00\x00\x02{}"))
	f.Add([]byte("\x00\x00\x00\x0b{\"t\":\"req\"}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			m, n, err := ReadMessage(r)
			if n < 0 || n > len(data)+4 {
				t.Fatalf("byte count %d out of range", n)
			}
			if err != nil {
				if m != nil {
					t.Fatal("non-nil message alongside error")
				}
				return
			}
			// Anything that decoded must re-encode.
			var buf bytes.Buffer
			if _, werr := WriteMessage(&buf, m); werr != nil {
				t.Fatalf("decoded message failed to re-encode: %v", werr)
			}
			// And re-decode to the same envelope type.
			m2, _, rerr := ReadMessage(&buf)
			if rerr != nil {
				t.Fatalf("re-encoded message failed to decode: %v", rerr)
			}
			if m2.T != m.T {
				t.Fatalf("envelope type changed across round trip: %q -> %q", m.T, m2.T)
			}
		}
	})
}

// FuzzReadBinary hardens the v3 binary decoder the same way: arbitrary
// bytes must produce a clean error or a message that re-encodes and
// re-decodes to the same value — never a panic, never an allocation
// beyond MaxFrame. Seeds live in testdata/fuzz/FuzzReadBinary.
func FuzzReadBinary(f *testing.F) {
	// Valid single frames across every envelope, including stream frames
	// and enum escapes.
	for _, m := range []*Message{
		Req(&Request{ID: 1, Op: OpHello, Version: Version}),
		Req(&Request{ID: 2, Op: OpPeek, Session: 3, Name: "dut.count"}),
		Req(&Request{ID: 3, Op: OpPeekBatch, Session: 3, Items: []BatchItem{
			{Name: "a"}, {Name: "m", Mem: true, Addr: 7, Value: 9},
		}}),
		Req(&Request{ID: 4, Op: OpStreamOpen, Session: 3, Name: StreamCounters, N: 32}),
		Req(&Request{ID: 5, Op: "madeup", Prefix: "x."}),
		Resp(&Response{ID: 2, Value: 42}),
		Resp(&Response{ID: 3, Values: []uint64{1, 2, 3}}),
		Resp(&Response{ID: 4, Err: Errf(CodeBusy, "busy")}),
		Evt(&Event{Kind: EvtStream, Stream: 1, Seq: 9, Count: 500,
			Names: []string{"peeks"}, Deltas: []uint64{500}}),
		Evt(&Event{Kind: EvtPaused, Session: 3, Cycles: 77}),
	} {
		var buf bytes.Buffer
		if _, err := WriteMessageV(&buf, m, 3); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	// Adversarial shapes: bad kinds, bogus flags, hostile counts.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 'X'})
	f.Add([]byte{0, 0, 0, 2, 'Q', 0xFF})
	f.Add([]byte{0, 0, 0, 6, 'Q', 1, 0, 0xFF, 0xFF, 0x03})
	f.Add([]byte{0, 0, 0, 8, 'Q', 1, 9, 0x80, 0x20, 0xFF, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'Q'})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			m, n, err := ReadMessageV(r, 3)
			if n < 0 || n > len(data)+4 {
				t.Fatalf("byte count %d out of range", n)
			}
			if err != nil {
				if m != nil {
					t.Fatal("non-nil message alongside error")
				}
				return
			}
			// Anything that decoded must re-encode...
			var buf bytes.Buffer
			if _, werr := WriteMessageV(&buf, m, 3); werr != nil {
				t.Fatalf("decoded message failed to re-encode: %v", werr)
			}
			// ...and re-decode to the same value (binary framing is
			// canonical, so full equality must hold, not just envelope type).
			m2, _, rerr := ReadMessageV(&buf, 3)
			if rerr != nil {
				t.Fatalf("re-encoded message failed to decode: %v", rerr)
			}
			if !reflect.DeepEqual(m2, m) {
				t.Fatalf("message changed across round trip:\n got %s\nwant %s", dump(m2), dump(m))
			}
		}
	})
}
