package wire

import (
	"bytes"
	"testing"
)

// FuzzReadMessage hardens the frame decoder: arbitrary bytes — truncated
// frames, oversized length prefixes, garbage JSON, mixed envelopes — must
// produce a clean error, never a panic and never an allocation beyond
// MaxFrame. Checked-in corpus seeds live in testdata/fuzz/FuzzReadMessage.
func FuzzReadMessage(f *testing.F) {
	// Valid single frames.
	for _, m := range []*Message{
		Req(&Request{ID: 1, Op: OpHello, Version: Version}),
		Req(&Request{ID: 2, Op: OpAttach, Design: "counter"}),
		Resp(&Response{ID: 2, Session: 1, Device: "U200"}),
		Evt(&Event{Kind: EvtPaused, Session: 1, Cycles: 12}),
	} {
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// And its truncations.
		f.Add(buf.Bytes()[:buf.Len()/2])
		f.Add(buf.Bytes()[:4])
	}
	// Adversarial shapes.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte("\x00\x00\x00\x05junk!"))
	f.Add([]byte("\x00\x00\x00\x02{}"))
	f.Add([]byte("\x00\x00\x00\x0b{\"t\":\"req\"}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			m, n, err := ReadMessage(r)
			if n < 0 || n > len(data)+4 {
				t.Fatalf("byte count %d out of range", n)
			}
			if err != nil {
				if m != nil {
					t.Fatal("non-nil message alongside error")
				}
				return
			}
			// Anything that decoded must re-encode.
			var buf bytes.Buffer
			if _, werr := WriteMessage(&buf, m); werr != nil {
				t.Fatalf("decoded message failed to re-encode: %v", werr)
			}
			// And re-decode to the same envelope type.
			m2, _, rerr := ReadMessage(&buf)
			if rerr != nil {
				t.Fatalf("re-encoded message failed to decode: %v", rerr)
			}
			if m2.T != m.T {
				t.Fatalf("envelope type changed across round trip: %q -> %q", m.T, m2.T)
			}
		}
	})
}
