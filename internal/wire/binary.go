// Binary framing for protocol version 3.
//
// A v3 frame keeps the v1/v2 transport shape — 4-byte big-endian payload
// length, bounded by MaxFrame — but the payload is a tagged binary body
// instead of JSON:
//
//	payload := kind body
//	kind    := 'Q' (request) | 'S' (response) | 'E' (event)
//
// Bodies are positional: the always-present fields first (id, opcode),
// then a presence bitmask, then the present optional fields in bit
// order. Unsigned integers are uvarints, signed integers are zigzag
// varints, strings are length-prefixed bytes, and well-known enums (op
// names, error codes, event kinds) are table-coded with code 0 escaping
// to a literal string so arbitrary messages survive a round trip. The
// presence rule matches encoding/json's omitempty — a zero field is
// absent — so a message crossing a v2 (JSON) hop and a v3 (binary) hop
// decodes identically.
//
// The codec is built for the hot path: Encoder appends frames to one
// pooled buffer and writes them with a single Write (writev-style
// coalescing), Decoder reuses its payload buffer and interns repeated
// strings (signal names, design names), and neither touches reflection.
// Encoding a peek request or a batched-peek response allocates nothing
// in steady state; decoding allocates only the small result structs
// (and, with SetReuse(true), nothing at all).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"
)

// Frame kind tags (first payload byte). Chosen to collide with nothing a
// JSON payload can start with, so a codec mismatch fails loudly in the
// envelope check instead of misparsing.
const (
	kindReq  = 'Q'
	kindResp = 'S'
	kindEvt  = 'E'
)

// opCode tables: dense numeric codes for the op strings. Code 0 is the
// string escape. Appending to this table is wire-compatible; reordering
// is not (the codes are the protocol).
var opNames = []string{
	0:  "", // escape: literal string follows
	1:  OpHello,
	2:  OpAttach,
	3:  OpDetach,
	4:  OpRun,
	5:  OpPause,
	6:  OpResume,
	7:  OpStep,
	8:  OpUntil,
	9:  OpPeek,
	10: OpPoke,
	11: OpPeekMem,
	12: OpPokeMem,
	13: OpBreak,
	14: OpClearBrk,
	15: OpAssert,
	16: OpSnapSave,
	17: OpSnapRest,
	18: OpInspect,
	19: OpTrace,
	20: OpInput,
	21: OpOutput,
	22: OpSessStat,
	23: OpStatus,
	24: OpSubscribe,
	25: OpPeekBatch,
	26: OpPokeBatch,
	27: OpStreamOpen,
	28: OpStreamCredit,
	29: OpStreamClose,
	30: OpHistSeek,
	31: OpHistRewind,
	32: OpHistRevCont,
	33: OpHistSave,
	34: OpHistLoad,
	35: OpHistStat,
	36: OpHistTimelines,
	37: OpStateExport,
	38: OpStateImport,
	39: OpFleetStat,
	40: OpFleetDrain,
	41: OpCompileSubmit,
	42: OpCompileStatus,
	43: OpCompileCancel,
}

var evtNames = []string{
	0: "", // escape
	1: EvtPaused,
	2: EvtDetached,
	3: EvtShutdown,
	4: EvtQuarantined,
	5: EvtMigrated,
	6: EvtStream,
}

var errNames = []string{
	0:  "", // escape
	1:  CodeBadRequest,
	2:  CodeUnknownOp,
	3:  CodeUnknownDesign,
	4:  CodeForbidden,
	5:  CodeNoSession,
	6:  CodePoolExhausted,
	7:  CodeBusy,
	8:  CodeVersion,
	9:  CodeShutdown,
	10: CodeOp,
	11: CodeTimeout,
	12: CodeConnLost,
	13: CodeBoardFailed,
	14: CodeUnknownState,
	15: CodeIsMemory,
	16: CodeIsRegister,
	17: CodeOutOfRange,
	18: CodeNotWatched,
	19: CodeWidthMismatch,
	20: CodePartialBatch,
	21: CodeCancelled,
	22: CodeNoStream,
	23: CodeHistoryHorizon,
	24: CodeOverloaded,
}

var (
	opCodes  = invert(opNames)
	evtCodes = invert(evtNames)
	errCodes = invert(errNames)
)

func invert(names []string) map[string]uint64 {
	m := make(map[string]uint64, len(names))
	for i, n := range names {
		if i != 0 {
			m[n] = uint64(i)
		}
	}
	return m
}

// Request presence bits (encode order).
const (
	reqVersion = 1 << iota
	reqSession
	reqClient
	reqSeq
	reqDesign
	reqName
	reqPrefix
	reqSignals
	reqValue
	reqAddr
	reqN
	reqMode
	reqEnable
	reqItems
	reqStream
)

// Response presence bits (encode order).
const (
	respErr = 1 << iota
	respVersion
	respClient
	respSession
	respDesign
	respDevice
	respReport
	respWatches
	respValue
	respValues
	respRan
	respPaused
	respCycles
	respElapsed
	respRegs
	respMems
	respLines
	respTrace
	respStats
	respStream
)

// Event presence bits (encode order).
const (
	evfSession = 1 << iota
	evfOp
	evfCycles
	evfDetail
	evfStream
	evfSeq
	evfDropped
	evfCount
	evfNames
	evfDeltas
	evfRows
)

// ---- append-side primitives ----

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v)<<1^uint64(v>>63))
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func appendUint64s(b []byte, vs []uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

func appendRows(b []byte, rows [][]uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(rows)))
	for _, r := range rows {
		b = appendUint64s(b, r)
	}
	return b
}

// appendEnum table-codes a well-known string, escaping unknown values to
// code 0 + literal so arbitrary strings survive the round trip.
func appendEnum(b []byte, codes map[string]uint64, s string) []byte {
	if c, ok := codes[s]; ok {
		return binary.AppendUvarint(b, c)
	}
	b = binary.AppendUvarint(b, 0)
	return appendString(b, s)
}

// AppendMessage appends one v3 frame (length prefix included) to buf and
// returns the extended slice. It is the zero-allocation core of the v3
// encode path; Encoder wraps it with buffer pooling and coalescing.
func AppendMessage(buf []byte, m *Message) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length back-patched below
	switch m.T {
	case TReq:
		if m.Req == nil {
			return buf[:start], fmt.Errorf("wire: encode: %q envelope without request", m.T)
		}
		buf = appendRequest(buf, m.Req)
	case TResp:
		if m.Resp == nil {
			return buf[:start], fmt.Errorf("wire: encode: %q envelope without response", m.T)
		}
		var err error
		if buf, err = appendResponse(buf, m.Resp); err != nil {
			return buf[:start], err
		}
	case TEvt:
		if m.Evt == nil {
			return buf[:start], fmt.Errorf("wire: encode: %q envelope without event", m.T)
		}
		buf = appendEvent(buf, m.Evt)
	default:
		return buf[:start], fmt.Errorf("wire: encode: unknown message type %q", m.T)
	}
	n := len(buf) - start - 4
	if n > MaxFrame {
		return buf[:start], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(n))
	return buf, nil
}

func appendRequest(b []byte, r *Request) []byte {
	b = append(b, kindReq)
	b = appendUvarint(b, r.ID)
	b = appendEnum(b, opCodes, r.Op)
	var flags uint64
	if r.Version != 0 {
		flags |= reqVersion
	}
	if r.Session != 0 {
		flags |= reqSession
	}
	if r.Client != 0 {
		flags |= reqClient
	}
	if r.Seq != 0 {
		flags |= reqSeq
	}
	if r.Design != "" {
		flags |= reqDesign
	}
	if r.Name != "" {
		flags |= reqName
	}
	if r.Prefix != "" {
		flags |= reqPrefix
	}
	if len(r.Signals) != 0 {
		flags |= reqSignals
	}
	if r.Value != 0 {
		flags |= reqValue
	}
	if r.Addr != 0 {
		flags |= reqAddr
	}
	if r.N != 0 {
		flags |= reqN
	}
	if r.Mode != "" {
		flags |= reqMode
	}
	if r.Enable {
		flags |= reqEnable
	}
	if len(r.Items) != 0 {
		flags |= reqItems
	}
	if r.Stream != 0 {
		flags |= reqStream
	}
	b = appendUvarint(b, flags)
	if flags&reqVersion != 0 {
		b = appendZigzag(b, int64(r.Version))
	}
	if flags&reqSession != 0 {
		b = appendUvarint(b, r.Session)
	}
	if flags&reqClient != 0 {
		b = appendUvarint(b, r.Client)
	}
	if flags&reqSeq != 0 {
		b = appendUvarint(b, r.Seq)
	}
	if flags&reqDesign != 0 {
		b = appendString(b, r.Design)
	}
	if flags&reqName != 0 {
		b = appendString(b, r.Name)
	}
	if flags&reqPrefix != 0 {
		b = appendString(b, r.Prefix)
	}
	if flags&reqSignals != 0 {
		b = appendStrings(b, r.Signals)
	}
	if flags&reqValue != 0 {
		b = appendUvarint(b, r.Value)
	}
	if flags&reqAddr != 0 {
		b = appendZigzag(b, int64(r.Addr))
	}
	if flags&reqN != 0 {
		b = appendZigzag(b, int64(r.N))
	}
	if flags&reqMode != 0 {
		b = appendString(b, r.Mode)
	}
	if flags&reqItems != 0 {
		b = appendUvarint(b, uint64(len(r.Items)))
		for i := range r.Items {
			it := &r.Items[i]
			var f uint64
			if it.Mem {
				f |= 1
			}
			if it.Addr != 0 {
				f |= 2
			}
			if it.Value != 0 {
				f |= 4
			}
			b = appendUvarint(b, f)
			b = appendString(b, it.Name)
			if f&2 != 0 {
				b = appendZigzag(b, int64(it.Addr))
			}
			if f&4 != 0 {
				b = appendUvarint(b, it.Value)
			}
		}
	}
	if flags&reqStream != 0 {
		b = appendUvarint(b, r.Stream)
	}
	return b
}

func appendResponse(b []byte, r *Response) ([]byte, error) {
	b = append(b, kindResp)
	b = appendUvarint(b, r.ID)
	var flags uint64
	if r.Err != nil {
		flags |= respErr
	}
	if r.Version != 0 {
		flags |= respVersion
	}
	if r.Client != 0 {
		flags |= respClient
	}
	if r.Session != 0 {
		flags |= respSession
	}
	if r.Design != "" {
		flags |= respDesign
	}
	if r.Device != "" {
		flags |= respDevice
	}
	if r.Report != "" {
		flags |= respReport
	}
	if len(r.Watches) != 0 {
		flags |= respWatches
	}
	if r.Value != 0 {
		flags |= respValue
	}
	if len(r.Values) != 0 {
		flags |= respValues
	}
	if r.Ran != 0 {
		flags |= respRan
	}
	if r.Paused {
		flags |= respPaused
	}
	if r.Cycles != 0 {
		flags |= respCycles
	}
	if r.ElapsedNS != 0 {
		flags |= respElapsed
	}
	if r.Regs != 0 {
		flags |= respRegs
	}
	if r.Mems != 0 {
		flags |= respMems
	}
	if len(r.Lines) != 0 {
		flags |= respLines
	}
	if r.Trace != nil {
		flags |= respTrace
	}
	if r.Stats != nil {
		flags |= respStats
	}
	if r.Stream != 0 {
		flags |= respStream
	}
	b = appendUvarint(b, flags)
	if flags&respErr != 0 {
		b = appendEnum(b, errCodes, r.Err.Code)
		b = appendString(b, r.Err.Msg)
	}
	if flags&respVersion != 0 {
		b = appendZigzag(b, int64(r.Version))
	}
	if flags&respClient != 0 {
		b = appendUvarint(b, r.Client)
	}
	if flags&respSession != 0 {
		b = appendUvarint(b, r.Session)
	}
	if flags&respDesign != 0 {
		b = appendString(b, r.Design)
	}
	if flags&respDevice != 0 {
		b = appendString(b, r.Device)
	}
	if flags&respReport != 0 {
		b = appendString(b, r.Report)
	}
	if flags&respWatches != 0 {
		b = appendStrings(b, r.Watches)
	}
	if flags&respValue != 0 {
		b = appendUvarint(b, r.Value)
	}
	if flags&respValues != 0 {
		b = appendUint64s(b, r.Values)
	}
	if flags&respRan != 0 {
		b = appendZigzag(b, int64(r.Ran))
	}
	if flags&respCycles != 0 {
		b = appendUvarint(b, r.Cycles)
	}
	if flags&respElapsed != 0 {
		b = appendZigzag(b, r.ElapsedNS)
	}
	if flags&respRegs != 0 {
		b = appendZigzag(b, int64(r.Regs))
	}
	if flags&respMems != 0 {
		b = appendZigzag(b, int64(r.Mems))
	}
	if flags&respLines != 0 {
		b = appendStrings(b, r.Lines)
	}
	if flags&respTrace != 0 {
		b = appendStrings(b, r.Trace.Signals)
		b = appendUvarint(b, uint64(len(r.Trace.Widths)))
		for _, w := range r.Trace.Widths {
			b = appendZigzag(b, int64(w))
		}
		b = appendRows(b, r.Trace.Rows)
	}
	if flags&respStats != 0 {
		// Stats is the cold control plane (one OpStatus per scrape); a JSON
		// sub-blob keeps the binary codec small without freezing the counter
		// set into the framing.
		blob, err := json.Marshal(r.Stats)
		if err != nil {
			return b, fmt.Errorf("wire: encode stats: %w", err)
		}
		b = appendUvarint(b, uint64(len(blob)))
		b = append(b, blob...)
	}
	if flags&respStream != 0 {
		b = appendUvarint(b, r.Stream)
	}
	return b, nil
}

func appendEvent(b []byte, e *Event) []byte {
	b = append(b, kindEvt)
	b = appendEnum(b, evtCodes, e.Kind)
	var flags uint64
	if e.Session != 0 {
		flags |= evfSession
	}
	if e.Op != "" {
		flags |= evfOp
	}
	if e.Cycles != 0 {
		flags |= evfCycles
	}
	if e.Detail != "" {
		flags |= evfDetail
	}
	if e.Stream != 0 {
		flags |= evfStream
	}
	if e.Seq != 0 {
		flags |= evfSeq
	}
	if e.Dropped != 0 {
		flags |= evfDropped
	}
	if e.Count != 0 {
		flags |= evfCount
	}
	if len(e.Names) != 0 {
		flags |= evfNames
	}
	if len(e.Deltas) != 0 {
		flags |= evfDeltas
	}
	if len(e.Rows) != 0 {
		flags |= evfRows
	}
	b = appendUvarint(b, flags)
	if flags&evfSession != 0 {
		b = appendUvarint(b, e.Session)
	}
	if flags&evfOp != 0 {
		b = appendEnum(b, opCodes, e.Op)
	}
	if flags&evfCycles != 0 {
		b = appendUvarint(b, e.Cycles)
	}
	if flags&evfDetail != 0 {
		b = appendString(b, e.Detail)
	}
	if flags&evfStream != 0 {
		b = appendUvarint(b, e.Stream)
	}
	if flags&evfSeq != 0 {
		b = appendUvarint(b, e.Seq)
	}
	if flags&evfDropped != 0 {
		b = appendUvarint(b, e.Dropped)
	}
	if flags&evfCount != 0 {
		b = appendUvarint(b, e.Count)
	}
	if flags&evfNames != 0 {
		b = appendStrings(b, e.Names)
	}
	if flags&evfDeltas != 0 {
		b = appendUint64s(b, e.Deltas)
	}
	if flags&evfRows != 0 {
		b = appendRows(b, e.Rows)
	}
	return b
}

// ---- decode-side primitives ----

// reader walks a payload slice. Every length and count is bounded by the
// remaining bytes before any allocation, so a hostile frame cannot make
// the decoder allocate more than a small multiple of the (MaxFrame-
// bounded) payload it actually sent.
type reader struct {
	b   []byte
	pos int
	// intern dedupes repeated strings (signal names on the peek/poke hot
	// path); the map lookup on a []byte key does not allocate, so steady-
	// state decoding of a familiar name is allocation-free.
	intern map[string]string
}

var errTruncated = errors.New("wire: truncated binary frame")

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, errTruncated
	}
	r.pos += n
	return v, nil
}

func (r *reader) zigzag() (int64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

func (r *reader) intVal() (int, error) {
	v, err := r.zigzag()
	if err != nil {
		return 0, err
	}
	if v < int64(minInt) || v > int64(maxInt) {
		return 0, fmt.Errorf("wire: integer %d out of range", v)
	}
	return int(v), nil
}

const (
	maxInt = int(^uint(0) >> 1)
	minInt = -maxInt - 1
)

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.pos) {
		return nil, errTruncated
	}
	s := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return s, nil
}

// maxIntern bounds the intern table so a peer cycling through unique
// names cannot grow it without bound.
const maxIntern = 4096

func (r *reader) str() (string, error) {
	b, err := r.bytes()
	if err != nil {
		return "", err
	}
	if len(b) == 0 {
		return "", nil
	}
	if r.intern != nil {
		if s, ok := r.intern[string(b)]; ok {
			return s, nil
		}
		s := string(b)
		if len(r.intern) < maxIntern {
			r.intern[s] = s
		}
		return s, nil
	}
	return string(b), nil
}

func (r *reader) strs() ([]string, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.pos) { // every string costs >= 1 byte
		return nil, errTruncated
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *reader) uint64s(reuse []uint64) ([]uint64, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.pos) { // every value costs >= 1 byte
		return nil, errTruncated
	}
	var out []uint64
	if uint64(cap(reuse)) >= n {
		out = reuse[:n]
	} else {
		out = make([]uint64, n)
	}
	for i := range out {
		if out[i], err = r.uvarint(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *reader) rows() ([][]uint64, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.pos) {
		return nil, errTruncated
	}
	out := make([][]uint64, n)
	for i := range out {
		if out[i], err = r.uint64s(nil); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// enum decodes a table-coded string (code 0 = literal escape).
func (r *reader) enum(names []string) (string, error) {
	c, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if c == 0 {
		return r.str()
	}
	if c >= uint64(len(names)) {
		return "", fmt.Errorf("wire: unknown enum code %d", c)
	}
	return names[c], nil
}

// DecodeMessage decodes one v3 payload (the bytes after the length
// prefix) into m. The out-structs (req/resp/evt) receive the decoded
// fields; slices already present in them are reused when large enough.
func decodePayload(payload []byte, m *Message, req *Request, resp *Response, evt *Event, intern map[string]string) error {
	if len(payload) == 0 {
		return fmt.Errorf("wire: empty frame")
	}
	r := reader{b: payload, pos: 1, intern: intern}
	switch payload[0] {
	case kindReq:
		if err := r.request(req); err != nil {
			return err
		}
		m.T, m.Req, m.Resp, m.Evt = TReq, req, nil, nil
	case kindResp:
		if err := r.response(resp); err != nil {
			return err
		}
		m.T, m.Req, m.Resp, m.Evt = TResp, nil, resp, nil
	case kindEvt:
		if err := r.event(evt); err != nil {
			return err
		}
		m.T, m.Req, m.Resp, m.Evt = TEvt, nil, nil, evt
	default:
		return fmt.Errorf("wire: unknown binary frame kind %#x", payload[0])
	}
	if r.pos != len(payload) {
		return fmt.Errorf("wire: %d trailing bytes after binary frame", len(payload)-r.pos)
	}
	return nil
}

func (r *reader) request(q *Request) error {
	items := q.Items
	*q = Request{}
	var err error
	if q.ID, err = r.uvarint(); err != nil {
		return err
	}
	if q.Op, err = r.enum(opNames); err != nil {
		return err
	}
	flags, err := r.uvarint()
	if err != nil {
		return err
	}
	if flags >= 1<<15 {
		return fmt.Errorf("wire: unknown request flags %#x", flags)
	}
	if flags&reqVersion != 0 {
		if q.Version, err = r.intVal(); err != nil {
			return err
		}
	}
	if flags&reqSession != 0 {
		if q.Session, err = r.uvarint(); err != nil {
			return err
		}
	}
	if flags&reqClient != 0 {
		if q.Client, err = r.uvarint(); err != nil {
			return err
		}
	}
	if flags&reqSeq != 0 {
		if q.Seq, err = r.uvarint(); err != nil {
			return err
		}
	}
	if flags&reqDesign != 0 {
		if q.Design, err = r.str(); err != nil {
			return err
		}
	}
	if flags&reqName != 0 {
		if q.Name, err = r.str(); err != nil {
			return err
		}
	}
	if flags&reqPrefix != 0 {
		if q.Prefix, err = r.str(); err != nil {
			return err
		}
	}
	if flags&reqSignals != 0 {
		if q.Signals, err = r.strs(); err != nil {
			return err
		}
	}
	if flags&reqValue != 0 {
		if q.Value, err = r.uvarint(); err != nil {
			return err
		}
	}
	if flags&reqAddr != 0 {
		if q.Addr, err = r.intVal(); err != nil {
			return err
		}
	}
	if flags&reqN != 0 {
		if q.N, err = r.intVal(); err != nil {
			return err
		}
	}
	if flags&reqMode != 0 {
		if q.Mode, err = r.str(); err != nil {
			return err
		}
	}
	q.Enable = flags&reqEnable != 0
	if flags&reqItems != 0 {
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(r.b)-r.pos) { // every item costs >= 2 bytes
			return errTruncated
		}
		if uint64(cap(items)) >= n {
			q.Items = items[:n]
		} else {
			q.Items = make([]BatchItem, n)
		}
		for i := range q.Items {
			it := &q.Items[i]
			*it = BatchItem{}
			f, err := r.uvarint()
			if err != nil {
				return err
			}
			if f >= 1<<3 {
				return fmt.Errorf("wire: unknown batch-item flags %#x", f)
			}
			it.Mem = f&1 != 0
			if it.Name, err = r.str(); err != nil {
				return err
			}
			if f&2 != 0 {
				if it.Addr, err = r.intVal(); err != nil {
					return err
				}
			}
			if f&4 != 0 {
				if it.Value, err = r.uvarint(); err != nil {
					return err
				}
			}
		}
	}
	if flags&reqStream != 0 {
		if q.Stream, err = r.uvarint(); err != nil {
			return err
		}
	}
	return nil
}

func (r *reader) response(p *Response) error {
	values := p.Values
	*p = Response{}
	var err error
	if p.ID, err = r.uvarint(); err != nil {
		return err
	}
	flags, err := r.uvarint()
	if err != nil {
		return err
	}
	if flags >= 1<<20 {
		return fmt.Errorf("wire: unknown response flags %#x", flags)
	}
	if flags&respErr != 0 {
		e := &Error{}
		if e.Code, err = r.enum(errNames); err != nil {
			return err
		}
		if e.Msg, err = r.str(); err != nil {
			return err
		}
		p.Err = e
	}
	if flags&respVersion != 0 {
		if p.Version, err = r.intVal(); err != nil {
			return err
		}
	}
	if flags&respClient != 0 {
		if p.Client, err = r.uvarint(); err != nil {
			return err
		}
	}
	if flags&respSession != 0 {
		if p.Session, err = r.uvarint(); err != nil {
			return err
		}
	}
	if flags&respDesign != 0 {
		if p.Design, err = r.str(); err != nil {
			return err
		}
	}
	if flags&respDevice != 0 {
		if p.Device, err = r.str(); err != nil {
			return err
		}
	}
	if flags&respReport != 0 {
		if p.Report, err = r.str(); err != nil {
			return err
		}
	}
	if flags&respWatches != 0 {
		if p.Watches, err = r.strs(); err != nil {
			return err
		}
	}
	if flags&respValue != 0 {
		if p.Value, err = r.uvarint(); err != nil {
			return err
		}
	}
	if flags&respValues != 0 {
		if p.Values, err = r.uint64s(values); err != nil {
			return err
		}
	}
	if flags&respRan != 0 {
		if p.Ran, err = r.intVal(); err != nil {
			return err
		}
	}
	p.Paused = flags&respPaused != 0
	if flags&respCycles != 0 {
		if p.Cycles, err = r.uvarint(); err != nil {
			return err
		}
	}
	if flags&respElapsed != 0 {
		if p.ElapsedNS, err = r.zigzag(); err != nil {
			return err
		}
	}
	if flags&respRegs != 0 {
		if p.Regs, err = r.intVal(); err != nil {
			return err
		}
	}
	if flags&respMems != 0 {
		if p.Mems, err = r.intVal(); err != nil {
			return err
		}
	}
	if flags&respLines != 0 {
		if p.Lines, err = r.strs(); err != nil {
			return err
		}
	}
	if flags&respTrace != 0 {
		t := &Trace{}
		if t.Signals, err = r.strs(); err != nil {
			return err
		}
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(r.b)-r.pos) {
			return errTruncated
		}
		t.Widths = make([]int, n)
		for i := range t.Widths {
			if t.Widths[i], err = r.intVal(); err != nil {
				return err
			}
		}
		if t.Rows, err = r.rows(); err != nil {
			return err
		}
		p.Trace = t
	}
	if flags&respStats != 0 {
		blob, err := r.bytes()
		if err != nil {
			return err
		}
		st := &Stats{}
		if err := json.Unmarshal(blob, st); err != nil {
			return fmt.Errorf("wire: decode stats: %w", err)
		}
		p.Stats = st
	}
	if flags&respStream != 0 {
		if p.Stream, err = r.uvarint(); err != nil {
			return err
		}
	}
	return nil
}

func (r *reader) event(e *Event) error {
	*e = Event{}
	var err error
	if e.Kind, err = r.enum(evtNames); err != nil {
		return err
	}
	flags, err := r.uvarint()
	if err != nil {
		return err
	}
	if flags >= 1<<11 {
		return fmt.Errorf("wire: unknown event flags %#x", flags)
	}
	if flags&evfSession != 0 {
		if e.Session, err = r.uvarint(); err != nil {
			return err
		}
	}
	if flags&evfOp != 0 {
		if e.Op, err = r.enum(opNames); err != nil {
			return err
		}
	}
	if flags&evfCycles != 0 {
		if e.Cycles, err = r.uvarint(); err != nil {
			return err
		}
	}
	if flags&evfDetail != 0 {
		if e.Detail, err = r.str(); err != nil {
			return err
		}
	}
	if flags&evfStream != 0 {
		if e.Stream, err = r.uvarint(); err != nil {
			return err
		}
	}
	if flags&evfSeq != 0 {
		if e.Seq, err = r.uvarint(); err != nil {
			return err
		}
	}
	if flags&evfDropped != 0 {
		if e.Dropped, err = r.uvarint(); err != nil {
			return err
		}
	}
	if flags&evfCount != 0 {
		if e.Count, err = r.uvarint(); err != nil {
			return err
		}
	}
	if flags&evfNames != 0 {
		if e.Names, err = r.strs(); err != nil {
			return err
		}
	}
	if flags&evfDeltas != 0 {
		if e.Deltas, err = r.uint64s(nil); err != nil {
			return err
		}
	}
	if flags&evfRows != 0 {
		if e.Rows, err = r.rows(); err != nil {
			return err
		}
	}
	return nil
}

// ---- Encoder / Decoder ----

// Encoder writes frames in the negotiated protocol version, coalescing
// queued frames into a single Write (the userspace analogue of writev).
// It owns a reusable buffer, so steady-state encoding allocates nothing.
// Not safe for concurrent use; callers serialize (the server's per-conn
// write mutex, the client's writeMu).
type Encoder struct {
	w   io.Writer
	ver int
	buf []byte
}

// NewEncoder returns an encoder speaking the given protocol version
// (1/2 = length-prefixed JSON, 3+ = binary).
func NewEncoder(w io.Writer, ver int) *Encoder {
	return &Encoder{w: w, ver: ver, buf: make([]byte, 0, 1024)}
}

// SetVersion switches the codec — called once after version negotiation.
func (e *Encoder) SetVersion(ver int) { e.ver = ver }

// Version returns the protocol version the encoder speaks.
func (e *Encoder) Version() int { return e.ver }

// Reset points the encoder at a new connection (client reconnect).
func (e *Encoder) Reset(w io.Writer) { e.w = w; e.buf = e.buf[:0] }

// Queue appends one frame to the pending buffer without writing it.
// Combined with Flush this coalesces many small frames (batch responses,
// event bursts) into one syscall.
func (e *Encoder) Queue(m *Message) error {
	var err error
	if e.ver >= 3 {
		e.buf, err = AppendMessage(e.buf, m)
		return err
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(payload)))
	e.buf = append(e.buf, payload...)
	return nil
}

// Flush writes every queued frame with a single Write and returns the
// number of bytes written.
func (e *Encoder) Flush() (int, error) {
	if len(e.buf) == 0 {
		return 0, nil
	}
	n, err := e.w.Write(e.buf)
	// Shed an unusually large buffer after a burst instead of pinning it.
	if cap(e.buf) > 1<<20 {
		e.buf = make([]byte, 0, 1024)
	} else {
		e.buf = e.buf[:0]
	}
	return n, err
}

// Encode queues one frame and flushes it immediately.
func (e *Encoder) Encode(m *Message) (int, error) {
	if err := e.Queue(m); err != nil {
		return 0, err
	}
	return e.Flush()
}

// Decoder reads frames in the negotiated protocol version. It reuses its
// payload buffer across frames and interns repeated strings; with
// SetReuse(true) it also reuses the message structs themselves, making
// steady-state decode of the peek/poke hot path allocation-free (the
// returned message is then only valid until the next call). Not safe for
// concurrent use.
type Decoder struct {
	r      io.Reader
	ver    int
	buf    []byte
	intern map[string]string
	reuse  bool

	m    Message
	req  Request
	resp Response
	evt  Event
	// hdr lives in the struct so the slice passed to io.ReadFull does
	// not escape a stack frame per call.
	hdr [4]byte
}

// NewDecoder returns a decoder speaking the given protocol version.
func NewDecoder(r io.Reader, ver int) *Decoder {
	return &Decoder{r: r, ver: ver, intern: make(map[string]string)}
}

// SetVersion switches the codec — called once after version negotiation.
func (d *Decoder) SetVersion(ver int) { d.ver = ver }

// Version returns the protocol version the decoder speaks.
func (d *Decoder) Version() int { return d.ver }

// Reset points the decoder at a new connection (client reconnect).
func (d *Decoder) Reset(r io.Reader) { d.r = r }

// SetReuse opts into struct reuse: each Next overwrites the previously
// returned message. Only safe when every message is fully consumed
// before the next call (benchmarks, tight proxy loops) — the server and
// client keep it off because they hand decoded messages to other
// goroutines.
func (d *Decoder) SetReuse(on bool) { d.reuse = on }

// Next reads one frame. It returns the message, the bytes consumed, and
// an error; truncation and oversize behave exactly like ReadMessage.
func (d *Decoder) Next() (*Message, int, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, io.ErrUnexpectedEOF
		}
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(d.hdr[:])
	if n == 0 {
		return nil, 4, fmt.Errorf("wire: empty frame")
	}
	if n > MaxFrame {
		return nil, 4, ErrFrameTooLarge
	}
	if uint32(cap(d.buf)) < n {
		d.buf = make([]byte, roundCap(n))
	}
	payload := d.buf[:n]
	if _, err := io.ReadFull(d.r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, 4, err
	}
	if d.ver < 3 {
		var m Message
		if err := json.Unmarshal(payload, &m); err != nil {
			return nil, 4 + int(n), fmt.Errorf("wire: decode: %w", err)
		}
		if err := m.check(); err != nil {
			return nil, 4 + int(n), err
		}
		return &m, 4 + int(n), nil
	}
	m, req, resp, evt := &d.m, &d.req, &d.resp, &d.evt
	if !d.reuse {
		m, req, resp, evt = &Message{}, &Request{}, &Response{}, &Event{}
	}
	if err := decodePayload(payload, m, req, resp, evt, d.intern); err != nil {
		return nil, 4 + int(n), err
	}
	return m, 4 + int(n), nil
}

// roundCap rounds a payload size up to a power of two so a stream of
// slightly-growing frames doesn't reallocate on every frame.
func roundCap(n uint32) uint32 {
	if n < 512 {
		return 512
	}
	return 1 << bits.Len32(n-1)
}

// ---- convenience whole-message helpers ----

var msgBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 2048); return &b },
}

// WriteMessageV encodes one message as a frame of the given protocol
// version and returns the bytes written. The version-dispatching cousin
// of WriteMessage, sharing its pooled buffer: one Write, no per-frame
// allocation in steady state.
func WriteMessageV(w io.Writer, m *Message, ver int) (int, error) {
	if ver < 3 {
		return WriteMessage(w, m)
	}
	bp := msgBufPool.Get().(*[]byte)
	buf, err := AppendMessage((*bp)[:0], m)
	if err != nil {
		msgBufPool.Put(bp)
		return 0, err
	}
	n, err := w.Write(buf)
	*bp = buf[:0]
	msgBufPool.Put(bp)
	return n, err
}

// ReadMessageV decodes one frame of the given protocol version — the
// version-dispatching cousin of ReadMessage. Each call allocates a fresh
// message; loops that care about allocation use a Decoder.
func ReadMessageV(r io.Reader, ver int) (*Message, int, error) {
	if ver < 3 {
		return ReadMessage(r)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, io.ErrUnexpectedEOF
		}
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, 4, fmt.Errorf("wire: empty frame")
	}
	if n > MaxFrame {
		return nil, 4, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, 4, err
	}
	m := &Message{}
	if err := decodePayload(payload, m, &Request{}, &Response{}, &Event{}, nil); err != nil {
		return nil, 4 + int(n), err
	}
	return m, 4 + int(n), nil
}
