package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds a frame payload. It is checked before any allocation,
// so a hostile length prefix cannot make the decoder allocate unbounded
// memory. 8 MiB comfortably fits the largest legitimate payload (a long
// multi-signal step trace); snapshots never cross the wire — they live
// server-side.
const MaxFrame = 8 << 20

// ErrFrameTooLarge is returned when a length prefix exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// WriteMessage encodes one message as a length-prefixed JSON frame and
// returns the number of bytes written. The prefix+payload staging buffer
// comes from a pool shared with the v3 path, so even legacy JSON peers
// pay no per-frame buffer allocation (json.Marshal itself still
// allocates the payload; v3 removes that too).
func WriteMessage(w io.Writer, m *Message) (int, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return 0, fmt.Errorf("wire: encode: %w", err)
	}
	if len(payload) > MaxFrame {
		return 0, ErrFrameTooLarge
	}
	bp := msgBufPool.Get().(*[]byte)
	buf := binary.BigEndian.AppendUint32((*bp)[:0], uint32(len(payload)))
	buf = append(buf, payload...)
	n, err := w.Write(buf)
	*bp = buf[:0]
	msgBufPool.Put(bp)
	return n, err
}

// ReadMessage decodes one frame. It returns the message, the number of
// bytes consumed, and an error. Truncated input yields io.EOF (clean
// close between frames) or io.ErrUnexpectedEOF (mid-frame); oversized
// length prefixes yield ErrFrameTooLarge before any payload allocation;
// malformed JSON or an inconsistent envelope yields a decode error. It
// never panics.
func ReadMessage(r io.Reader) (*Message, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, io.ErrUnexpectedEOF
		}
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, 4, fmt.Errorf("wire: empty frame")
	}
	if n > MaxFrame {
		return nil, 4, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, 4, err
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, 4 + int(n), fmt.Errorf("wire: decode: %w", err)
	}
	if err := m.check(); err != nil {
		return nil, 4 + int(n), err
	}
	return &m, 4 + int(n), nil
}

// check validates the envelope discriminator against its payload.
func (m *Message) check() error {
	switch m.T {
	case TReq:
		if m.Req == nil || m.Resp != nil || m.Evt != nil {
			return fmt.Errorf("wire: malformed %q envelope", m.T)
		}
	case TResp:
		if m.Resp == nil || m.Req != nil || m.Evt != nil {
			return fmt.Errorf("wire: malformed %q envelope", m.T)
		}
	case TEvt:
		if m.Evt == nil || m.Req != nil || m.Resp != nil {
			return fmt.Errorf("wire: malformed %q envelope", m.T)
		}
	default:
		return fmt.Errorf("wire: unknown message type %q", m.T)
	}
	return nil
}

// Req wraps a request in its envelope.
func Req(r *Request) *Message { return &Message{T: TReq, Req: r} }

// Resp wraps a response in its envelope.
func Resp(r *Response) *Message { return &Message{T: TResp, Resp: r} }

// Evt wraps an event in its envelope.
func Evt(e *Event) *Message { return &Message{T: TEvt, Evt: e} }
