package server_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"zoomie/internal/client"
	"zoomie/internal/server"
	"zoomie/internal/wire"
)

// TestCountersStream opens a server-wide counters stream and checks that
// command activity surfaces as aggregated per-interval deltas: the hot
// path bumps atomics, the stream carries named sums, never the events.
func TestCountersStream(t *testing.T) {
	srv, addr := startServer(t, server.Config{PoolSize: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.OpenStream(wire.StreamCounters, 0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}

	const peeks = 40
	if err := sess.Pause(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < peeks; i++ {
		if _, err := sess.Peek("cnt"); err != nil {
			t.Fatal(err)
		}
	}

	// Accumulate frames until the peek counter's deltas sum to at least
	// the peeks we issued (they may arrive split over several intervals).
	deadline := time.After(5 * time.Second)
	var peekSum, frames uint64
	for peekSum < peeks {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		ev, ok := st.RecvCtx(ctx)
		cancel()
		if !ok {
			select {
			case <-deadline:
				t.Fatalf("stream closed/stalled after %d frames, peek deltas sum %d, want >=%d",
					frames, peekSum, peeks)
			default:
				t.Fatalf("stream closed early")
			}
		}
		frames++
		if ev.Kind != wire.EvtStream || ev.Stream != st.ID || ev.Seq == 0 {
			t.Fatalf("malformed frame: %+v", ev)
		}
		if len(ev.Names) != len(ev.Deltas) {
			t.Fatalf("names/deltas mismatch: %v vs %v", ev.Names, ev.Deltas)
		}
		for i, n := range ev.Names {
			if n == "zoomied.peeks" {
				peekSum += ev.Deltas[i]
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Recv(); ok {
		t.Error("Recv delivered a frame after Close")
	}

	stats := srv.Stats()
	if stats.StreamsOpened < 1 || stats.StreamFrames < int64(frames) {
		t.Errorf("stream stats not accounted: %+v", stats)
	}
	if stats.StreamEvents < peeks {
		t.Errorf("StreamEvents=%d, want >=%d", stats.StreamEvents, peeks)
	}
}

// TestILAStream attaches the ila-counter design and checks that capture
// windows flow continuously: the actor uploads each completed window in
// one batched readback, re-arms the trigger, and the frames decode to
// the counter's actual trajectory (qlow == q & 0xf, consecutive values).
func TestILAStream(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Attach("ila-counter")
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.OpenStream(wire.StreamILA, sess.ID, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Keep the clock moving so windows keep completing; the poll op is
	// serialized with these Run commands by the session actor.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				sess.Run(64)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	defer close(stop)

	var windows int
	for windows < 3 {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		ev, ok := st.RecvCtx(ctx)
		cancel()
		if !ok {
			t.Fatalf("ILA stream stalled after %d windows", windows)
		}
		windows++
		if len(ev.Names) != 2 || ev.Names[0] != "q" || ev.Names[1] != "qlow" {
			t.Fatalf("probe names = %v, want [q qlow]", ev.Names)
		}
		if len(ev.Rows) != 16 {
			t.Fatalf("window depth = %d rows, want 16", len(ev.Rows))
		}
		for i, row := range ev.Rows {
			if len(row) != 2 {
				t.Fatalf("row %d has %d values, want 2", i, len(row))
			}
			if row[1] != row[0]&0xf {
				t.Fatalf("row %d: qlow=%d but q=%d", i, row[1], row[0])
			}
			if i > 0 && row[0] != (ev.Rows[i-1][0]+1)&0xffff {
				t.Fatalf("window not contiguous at row %d: %d after %d", i, row[0], ev.Rows[i-1][0])
			}
		}
		// The trigger is qlow==0, so each window starts on a 16-aligned
		// counter value.
		if ev.Rows[0][1] != 0 {
			t.Fatalf("window does not start at trigger: qlow=%d", ev.Rows[0][1])
		}
	}
}

// TestStreamBackpressure pins the flow-control contract: a client that
// never consumes its counters stream makes the server shed the oldest
// pending frames (counted, visible in later frames' Dropped field) while
// the session actor keeps serving interactive commands at full speed.
func TestStreamBackpressure(t *testing.T) {
	srv, addr := startServer(t, server.Config{PoolSize: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Pause(); err != nil {
		t.Fatal(err)
	}

	// window=1: the server may have exactly one frame in flight. We never
	// Recv, so everything past the first frame piles into the pending ring
	// (cap 64) and then sheds oldest-first.
	st, err := c.OpenStream(wire.StreamCounters, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Generate activity every interval for long enough to overflow the
	// ring, and prove the paused-debug path stays responsive throughout.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		start := time.Now()
		if _, err := sess.Peek("cnt"); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("peek took %v while stream backed up — streaming blocked the actor", d)
		}
		if srv.Stats().StreamDropped > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	stats := srv.Stats()
	if stats.StreamDropped == 0 {
		t.Fatal("stalled stream never shed frames")
	}

	// Consuming again surfaces the drop count in-band: grant credits by
	// receiving, and a subsequent frame must carry Dropped > 0.
	sawDropped := false
	for i := 0; i < 70 && !sawDropped; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		ev, ok := st.RecvCtx(ctx)
		cancel()
		if !ok {
			break
		}
		if ev.Dropped > 0 {
			sawDropped = true
		}
		// Keep producing so post-drop frames exist to deliver.
		sess.Peek("cnt")
	}
	if !sawDropped {
		t.Error("no delivered frame carried the drop counter")
	}
}

// TestStreamVersionGate checks that stream ops are v3-only: a v2
// connection gets the same CodeUnknownOp an old server would produce,
// and the client helper refuses locally with a version error.
func TestStreamVersionGate(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 1})
	c, err := client.DialOptions(addr, client.Options{ProtocolVersion: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() != 2 {
		t.Fatalf("negotiated v%d, want 2", c.Version())
	}
	if _, err := c.OpenStream(wire.StreamCounters, 0, 0, 0); !wire.IsCode(err, wire.CodeVersion) {
		t.Errorf("client-side gate: %v, want CodeVersion", err)
	}
	_, err = c.Call(&wire.Request{Op: wire.OpStreamOpen, Name: wire.StreamCounters})
	if !wire.IsCode(err, wire.CodeUnknownOp) {
		t.Errorf("raw stream op on v2 conn: %v, want CodeUnknownOp", err)
	}
}

// TestStreamErrors covers the open/credit/close edge cases: unknown
// stream ids, unknown kinds, ILA streams on ILA-less designs or dead
// sessions.
func TestStreamErrors(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 2})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Call(&wire.Request{Op: wire.OpStreamCredit, Stream: 99, N: 1})
	if !wire.IsCode(err, wire.CodeNoStream) {
		t.Errorf("credit unknown stream: %v, want CodeNoStream", err)
	}
	_, err = c.Call(&wire.Request{Op: wire.OpStreamClose, Stream: 99})
	if !wire.IsCode(err, wire.CodeNoStream) {
		t.Errorf("close unknown stream: %v, want CodeNoStream", err)
	}
	if _, err = c.OpenStream("wavelets", 0, 0, 0); !wire.IsCode(err, wire.CodeBadRequest) {
		t.Errorf("unknown stream kind: %v, want CodeBadRequest", err)
	}
	if _, err = c.OpenStream(wire.StreamILA, 424242, 0, 0); !wire.IsCode(err, wire.CodeNoSession) {
		t.Errorf("ILA stream on missing session: %v, want CodeNoSession", err)
	}

	sess, err := c.Attach("counter") // no ILA on this design
	if err != nil {
		t.Fatal(err)
	}
	if _, err = c.OpenStream(wire.StreamILA, sess.ID, 0, 0); !wire.IsCode(err, wire.CodeBadRequest) {
		t.Errorf("ILA stream on ILA-less design: %v, want CodeBadRequest", err)
	}

	// An ILA stream dies with its session rather than erroring forever.
	isess, err := c.Attach("ila-counter")
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.OpenStream(wire.StreamILA, isess.ID, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := isess.Detach(); err != nil {
		t.Fatal(err)
	}
	// Drain whatever was in flight; the channel must stop yielding new
	// windows once the session is gone (the producer goroutine exits).
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		_, ok := st.RecvCtx(ctx)
		cancel()
		if !ok {
			break
		}
	}
	st.Close() // best effort; the stream may already be torn down
}

// TestV3ClientV2ServerDowngrade emulates a mixed fleet: a current client
// dialing an older (pre-binary-codec) server negotiates v2, speaks JSON
// in both directions, and keeps the full typed-error contract — unwrap
// to dberr sentinels included — while v3-only surfaces degrade cleanly.
func TestV3ClientV2ServerDowngrade(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 1, ProtocolCeiling: 2})
	c, err := client.Dial(addr) // offers wire.Version (3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() != 2 {
		t.Fatalf("negotiated v%d against v2 server, want 2", c.Version())
	}
	sess, err := c.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Poke("cnt", 77); err != nil {
		t.Fatal(err)
	}
	if v, err := sess.Peek("cnt"); err != nil || v != 77 {
		t.Fatalf("peek over downgraded conn = %d, %v", v, err)
	}
	// Typed errors still classify and unwrap on v2.
	_, err = sess.PeekMem("cnt", 0)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeIsRegister {
		t.Errorf("typed code lost in downgrade: %v", err)
	}
	if _, err := c.OpenStream(wire.StreamCounters, 0, 0, 0); !wire.IsCode(err, wire.CodeVersion) {
		t.Errorf("stream on downgraded conn: %v, want CodeVersion", err)
	}
}

// TestMixedFleetMidChaos runs one chaos-enabled v3 server and one
// v2-capped server side by side, severing the v3 client's connection
// mid-session: the reconnect renegotiates, replays, and typed errors
// keep classifying identically across the fleet's protocol versions.
func TestMixedFleetMidChaos(t *testing.T) {
	_, addr3 := startServer(t, server.Config{PoolSize: 1})
	_, addr2 := startServer(t, server.Config{PoolSize: 1, ProtocolCeiling: 2})

	proxy := newFlakyProxy(t, addr3)
	c3, err := client.DialOptions(proxy.addr(), client.Options{
		AutoReconnect: true,
		RedialBackoff: 10 * time.Millisecond,
		CallTimeout:   30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	c2, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	s3, err := c3.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c2.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*client.Session{s3, s2} {
		if err := s.Pause(); err != nil {
			t.Fatal(err)
		}
	}

	// A stream is open on the v3 connection when the cable is cut; it
	// must die cleanly (Recv reports closed) and be reopenable after the
	// reconnect, not wedge the client.
	st, err := c3.OpenStream(wire.StreamCounters, 0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	proxy.sever()
	if v, err := s3.Peek("cnt"); err != nil {
		t.Fatalf("peek across reconnect: %v (v=%d)", err, v)
	}
	closed := false
	for i := 0; i < 100 && !closed; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		_, ok := st.RecvCtx(ctx)
		expired := ctx.Err() != nil
		cancel()
		closed = !ok && !expired
	}
	if !closed {
		t.Error("pre-outage stream did not close after reconnect")
	}
	st2, err := c3.OpenStream(wire.StreamCounters, 0, 0, 5)
	if err != nil {
		t.Fatalf("reopen stream after reconnect: %v", err)
	}
	st2.Close()

	// Identical misuse classifies identically fleet-wide, and both
	// unwrap to the same sentinel despite the codec difference.
	_, err3 := s3.PeekMem("cnt", 0)
	_, err2 := s2.PeekMem("cnt", 0)
	var we3, we2 *wire.Error
	if !errors.As(err3, &we3) || !errors.As(err2, &we2) || we3.Code != we2.Code {
		t.Errorf("fleet disagreed on typed code: v3=%v v2=%v", err3, err2)
	}
	if !errors.Is(err3, we3.Unwrap()) || we3.Unwrap() == nil {
		t.Errorf("v3 error does not unwrap to its sentinel: %v", err3)
	}
}
