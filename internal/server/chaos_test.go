package server_test

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"zoomie/internal/client"
	"zoomie/internal/faults"
	"zoomie/internal/server"
	"zoomie/internal/wire"
)

// TestChaosStress is the end-to-end resilience gate: four clients drive
// full pause/poke/peek/step/resume/readback loops against a server whose
// every cable flips roughly 1% of the words it moves (plus transient
// execution errors), and every peeked value is checked exactly. The
// guarded transport must let zero corrupted words through to the facade,
// every operation must either succeed or fail with a typed wire error,
// and the actor serialization tripwire must stay at zero — all under
// -race.
func TestChaosStress(t *testing.T) {
	const (
		nClients = 4
		nIters   = 15
	)
	chaos := faults.Profile{Seed: 99, ReadFlip: 0.01, WriteFlip: 0.01, Exec: 0.005}
	srv, addr := startServer(t, server.Config{PoolSize: nClients, Chaos: &chaos})

	var wg sync.WaitGroup
	errs := make(chan error, nClients*nIters*4)
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.DialOptions(addr, client.Options{CallTimeout: 30 * time.Second})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			sess, err := c.Attach("counter")
			if err != nil {
				errs <- err
				return
			}
			for it := 0; it < nIters; it++ {
				if err := sess.Pause(); err != nil {
					errs <- fmt.Errorf("client %d pause: %w", id, err)
					return
				}
				want := uint64(id*1000 + it)
				if err := sess.Poke("cnt", want); err != nil {
					errs <- fmt.Errorf("client %d poke: %w", id, err)
					return
				}
				got, err := sess.Peek("cnt")
				if err != nil {
					errs <- fmt.Errorf("client %d peek: %w", id, err)
					return
				}
				if got != want {
					errs <- fmt.Errorf("client %d: CORRUPTED READ reached facade: cnt=%d want %d", id, got, want)
					return
				}
				steps := 1 + it%3
				if err := sess.Step(steps); err != nil {
					errs <- fmt.Errorf("client %d step: %w", id, err)
					return
				}
				if got, err = sess.Peek("cnt"); err != nil {
					errs <- fmt.Errorf("client %d peek after step: %w", id, err)
					return
				}
				if got != want+uint64(steps) {
					errs <- fmt.Errorf("client %d: CORRUPTED READ after step: cnt=%d want %d", id, got, want+uint64(steps))
					return
				}
				// Full-state readback (server-side snapshot) rides the same
				// verified transport.
				if it%5 == 4 {
					if _, _, _, err := sess.Snapshot(); err != nil {
						errs <- fmt.Errorf("client %d snapshot: %w", id, err)
						return
					}
				}
				if err := sess.Resume(); err != nil {
					errs <- fmt.Errorf("client %d resume: %w", id, err)
					return
				}
			}
			if err := sess.Detach(); err != nil {
				errs <- fmt.Errorf("client %d detach: %w", id, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.Stats()
	if st.Interleaved != 0 {
		t.Fatalf("actor serialization violated under chaos: %d interleaved", st.Interleaved)
	}
	if st.FaultsInjected == 0 {
		t.Error("chaos profile injected zero faults — injection is not wired in")
	}
	if st.JtagReReads == 0 {
		t.Error("zero frame re-reads at a 1%% flip rate — verified readback is not engaged")
	}
	t.Logf("chaos survived: %d faults injected, %d retries, %d re-reads, %d rewrites",
		st.FaultsInjected, st.JtagRetries, st.JtagReReads, st.JtagRewrites)
}

// TestWedgeQuarantineMigration wedges a session's board under the health
// prober and asserts the self-healing chain: the probe detects the wedge
// within its interval, the board is quarantined (with an async event),
// and the session migrates to a fresh board restored from its last
// known-good snapshot — poked values and armed breakpoints intact.
func TestWedgeQuarantineMigration(t *testing.T) {
	chaos := faults.Profile{Seed: 7, ReadFlip: 0.001}
	srv, addr := startServer(t, server.Config{
		PoolSize:           2,
		Chaos:              &chaos,
		ProbeInterval:      50 * time.Millisecond,
		QuarantineCooldown: time.Hour, // keep the benched board visible to assertions
	})

	c, err := client.DialOptions(addr, client.Options{CallTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}

	// Establish state a migration must carry over: a paused design with a
	// poked register and an armed breakpoint.
	if err := sess.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetValueBreakpoint("q", 1300, 1 /* BreakAny */); err != nil {
		t.Fatal(err)
	}
	if err := sess.Poke("cnt", 1234); err != nil {
		t.Fatal(err)
	}

	inj := srv.InjectorFor(sess.ID)
	if inj == nil {
		t.Fatal("no injector on a chaos-mode session")
	}
	inj.Wedge()

	// The prober must notice within a few intervals and the session must
	// come back on a fresh board.
	var sawQuarantine, sawMigrate bool
	deadline := time.After(5 * time.Second)
	for !(sawQuarantine && sawMigrate) {
		select {
		case e, ok := <-c.Events():
			if !ok {
				t.Fatal("event channel closed before migration completed")
			}
			switch e.Kind {
			case wire.EvtQuarantined:
				sawQuarantine = true
			case wire.EvtMigrated:
				sawMigrate = true
			}
		case <-deadline:
			t.Fatalf("no quarantine+migration within deadline (quarantine=%v migrate=%v)",
				sawQuarantine, sawMigrate)
		}
	}

	// The poked value survived the move...
	got, err := sess.Peek("cnt")
	if err != nil {
		t.Fatalf("peek after migration: %v", err)
	}
	if got != 1234 {
		t.Fatalf("after migration cnt=%d, want 1234 (known-good snapshot not restored)", got)
	}
	// ...the design is still paused...
	paused, err := sess.Paused()
	if err != nil {
		t.Fatal(err)
	}
	if !paused {
		t.Fatal("pause state lost in migration")
	}
	// ...and the breakpoint is still armed: releasing the host pause and
	// running hits it at q==1300.
	if err := sess.Resume(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunUntilPaused(1 << 14); err != nil {
		t.Fatalf("run-until after migration: %v", err)
	}
	if got, _ = sess.Peek("cnt"); got != 1300 {
		t.Fatalf("breakpoint after migration paused at cnt=%d, want 1300", got)
	}

	st := srv.Stats()
	if st.Quarantines < 1 || st.PoolQuarantined < 1 {
		t.Errorf("quarantine accounting: lifetime=%d benched=%d, want >=1 each",
			st.Quarantines, st.PoolQuarantined)
	}
	if st.Migrations < 1 {
		t.Errorf("migrations=%d, want >=1", st.Migrations)
	}
	if st.Probes == 0 || st.ProbeFailures == 0 {
		t.Errorf("probe accounting: probes=%d failures=%d, want >0 each", st.Probes, st.ProbeFailures)
	}
}

// TestQuarantineCooldownRequalifies asserts a benched board slot returns
// to capacity after its cooldown: with a pool of 1 and a quarantined
// board, attach fails until the cooldown expires, then succeeds.
func TestQuarantineCooldownRequalifies(t *testing.T) {
	pool := server.NewPool(1)
	pool.SetCooldown(100 * time.Millisecond)
	l, err := pool.Lease(testDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.Quarantine()
	if _, err := pool.Lease(testDevice()); err == nil {
		t.Fatal("lease succeeded while the only slot is quarantined")
	}
	if got := pool.Quarantined(); got != 1 {
		t.Fatalf("Quarantined()=%d, want 1", got)
	}
	time.Sleep(150 * time.Millisecond)
	if _, err := pool.Lease(testDevice()); err != nil {
		t.Fatalf("lease after cooldown: %v", err)
	}
	if got := pool.QuarantineCount(); got != 1 {
		t.Fatalf("QuarantineCount()=%d, want 1", got)
	}
}

// flakyProxy is a TCP relay whose connections can be severed on demand —
// the cable cutter for reconnect tests.
type flakyProxy struct {
	ln     net.Listener
	target string

	mu    sync.Mutex
	conns []net.Conn
}

func newFlakyProxy(t *testing.T, target string) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, target: target}
	go p.accept()
	t.Cleanup(func() { ln.Close(); p.sever() })
	return p
}

func (p *flakyProxy) addr() string { return p.ln.Addr().String() }

func (p *flakyProxy) accept() {
	for {
		cc, err := p.ln.Accept()
		if err != nil {
			return
		}
		sc, err := net.Dial("tcp", p.target)
		if err != nil {
			cc.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, cc, sc)
		p.mu.Unlock()
		go func() { io.Copy(sc, cc); sc.Close() }()
		go func() { io.Copy(cc, sc); cc.Close() }()
	}
}

// sever cuts every live relayed connection (the listener stays up, so
// redials succeed).
func (p *flakyProxy) sever() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

// TestClientAutoReconnect severs the TCP connection under a live session
// and asserts the client bridges the outage invisibly: it redials,
// re-presents its identity, replays what was pending, and subsequent
// calls see the same session with its breakpoint and pause state intact.
func TestClientAutoReconnect(t *testing.T) {
	srv, addr := startServer(t, server.Config{PoolSize: 2})
	proxy := newFlakyProxy(t, addr)

	c, err := client.DialOptions(proxy.addr(), client.Options{
		CallTimeout:   30 * time.Second,
		AutoReconnect: true,
		RedialBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cid := c.ClientID()
	if cid == 0 {
		t.Fatal("no client identity assigned at hello")
	}

	sess, err := c.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetValueBreakpoint("q", 400, 1); err != nil {
		t.Fatal(err)
	}
	if err := sess.Poke("cnt", 350); err != nil {
		t.Fatal(err)
	}

	// Cut the cable. The next calls must block through the outage and
	// complete on the replacement connection.
	proxy.sever()
	got, err := sess.Peek("cnt")
	if err != nil {
		t.Fatalf("peek across reconnect: %v", err)
	}
	if got != 350 {
		t.Fatalf("peek across reconnect: cnt=%d, want 350", got)
	}
	if c.ClientID() != cid {
		t.Fatalf("client identity changed across reconnect: %d -> %d", cid, c.ClientID())
	}

	// Session state survived: still paused, breakpoint still armed.
	if paused, err := sess.Paused(); err != nil || !paused {
		t.Fatalf("paused=%v err=%v after reconnect, want paused", paused, err)
	}
	if err := sess.Resume(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunUntilPaused(1 << 14); err != nil {
		t.Fatal(err)
	}
	if got, _ = sess.Peek("cnt"); got != 400 {
		t.Fatalf("breakpoint after reconnect paused at cnt=%d, want 400", got)
	}

	// Sever again mid-burst to shake the replay path with several calls
	// in flight, then verify events still flow on the new connection.
	proxy.sever()
	for i := 0; i < 5; i++ {
		if err := sess.Step(1); err != nil {
			t.Fatalf("step %d across second reconnect: %v", i, err)
		}
	}

	st := srv.Stats()
	if st.Reconnects < 2 {
		t.Errorf("reconnects=%d, want >=2", st.Reconnects)
	}
}

// TestReplayDedup drives the wire protocol by hand to prove the actor's
// replay cache: the same (client, seq) step request sent twice executes
// once — the second send is answered from cache, and the design advances
// by one step, not two.
func TestReplayDedup(t *testing.T) {
	srv, addr := startServer(t, server.Config{PoolSize: 1})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	roundtrip := func(req *wire.Request) *wire.Response {
		t.Helper()
		if _, err := wire.WriteMessage(nc, wire.Req(req)); err != nil {
			t.Fatal(err)
		}
		for {
			m, _, err := wire.ReadMessage(nc)
			if err != nil {
				t.Fatal(err)
			}
			if m.T == wire.TResp {
				if m.Resp.Err != nil {
					t.Fatalf("%s: %v", req.Op, m.Resp.Err)
				}
				return m.Resp
			}
		}
	}

	// This test drives raw JSON frames by hand, so it pins itself to v2:
	// offering v3 would switch the connection to the binary codec after
	// the hello (covered by the stream and cross-version tests instead).
	hello := roundtrip(&wire.Request{ID: 1, Op: wire.OpHello, Version: 2})
	cid := hello.Client
	att := roundtrip(&wire.Request{ID: 2, Op: wire.OpAttach, Design: "counter"})
	sid := att.Session
	roundtrip(&wire.Request{ID: 3, Op: wire.OpPause, Session: sid, Client: cid, Seq: 1})
	roundtrip(&wire.Request{ID: 4, Op: wire.OpPoke, Session: sid, Client: cid, Seq: 2, Name: "cnt", Value: 100})

	// The same sequenced step, sent twice (as a reconnecting client would
	// replay it): the counter must advance exactly once.
	step := &wire.Request{ID: 5, Op: wire.OpStep, Session: sid, Client: cid, Seq: 3, N: 1}
	roundtrip(step)
	roundtrip(step)

	peek := roundtrip(&wire.Request{ID: 6, Op: wire.OpPeek, Session: sid, Client: cid, Seq: 4, Name: "cnt"})
	if peek.Value != 101 {
		t.Fatalf("after duplicated step cnt=%d, want 101 (step executed twice?)", peek.Value)
	}
	if st := srv.Stats(); st.ReplayHits != 1 {
		t.Errorf("replay_hits=%d, want 1", st.ReplayHits)
	}
}
