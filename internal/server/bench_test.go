package server_test

import (
	"fmt"
	"net"
	"testing"

	"zoomie"
	"zoomie/internal/client"
	"zoomie/internal/dbg"
	"zoomie/internal/server"
)

// benchTarget starts a server on loopback and attaches one session at
// the given protocol version. The bench64 design (64 independent
// counters) is registered so batched peeks have distinct state to read.
func benchTarget(b *testing.B, ver int) *client.Session {
	b.Helper()
	server.Register("bench64", server.Entry{
		Describe: "64-register design for wire benchmarks",
		Build: func() (*zoomie.Design, zoomie.DebugConfig) {
			m := zoomie.NewModule("bench64")
			q := m.Output("q", 16)
			for i := 0; i < 64; i++ {
				r := m.Reg(fmt.Sprintf("r%d", i), 16, "clk", 0)
				m.SetNext(r, zoomie.Add(zoomie.S(r), zoomie.C(uint64(i+1), 16)))
				if i == 0 {
					m.Connect(q, zoomie.S(r))
				}
			}
			return zoomie.NewDesign("bench64", m), zoomie.DebugConfig{Watches: []string{"q"}}
		},
	})
	b.Cleanup(func() { server.Unregister("bench64") })

	srv := server.New(server.Config{PoolSize: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	b.Cleanup(func() {
		srv.Shutdown()
		<-done
	})
	c, err := client.DialOptions(ln.Addr().String(), client.Options{ProtocolVersion: ver})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	sess, err := c.Attach("bench64")
	if err != nil {
		b.Fatal(err)
	}
	if err := sess.Pause(); err != nil {
		b.Fatal(err)
	}
	return sess
}

// BenchmarkRemotePeek measures one single-register peek over loopback
// TCP — the interactive paused-debug hot path — under the JSON (v2) and
// binary (v3) codecs.
func BenchmarkRemotePeek(b *testing.B) {
	for _, ver := range []int{2, 3} {
		b.Run(fmt.Sprintf("v%d", ver), func(b *testing.B) {
			sess := benchTarget(b, ver)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Peek("r0"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRemotePeekBatch measures a 64-item batched peek over
// loopback — one wire round trip carrying the whole plan — under both
// codecs. The v3 win compounds here: the frame is larger, so the
// JSON-vs-binary encode/decode gap dominates the syscall floor.
func BenchmarkRemotePeekBatch(b *testing.B) {
	items := make([]dbg.PlanItem, 64)
	for i := range items {
		items[i] = dbg.PlanItem{Name: fmt.Sprintf("r%d", i)}
	}
	for _, ver := range []int{2, 3} {
		b.Run(fmt.Sprintf("v%d", ver), func(b *testing.B) {
			sess := benchTarget(b, ver)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals, err := sess.PeekBatch(items)
				if err != nil {
					b.Fatal(err)
				}
				if len(vals) != 64 {
					b.Fatalf("got %d values", len(vals))
				}
			}
		})
	}
}
