package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"zoomie"
	"zoomie/internal/farm"
	"zoomie/internal/obs"
	"zoomie/internal/wire"
)

// Streaming observability (v3): a stream is a server-push channel of
// EvtStream frames multiplexed over the client's ordinary connection.
// Two kinds exist — "counters" (per-interval deltas of the server-wide
// obs registry, aggregated so millions of producer events become a few
// frames per second) and "ila" (completed ILA capture windows, uploaded
// in one batched readback and re-armed so windows arrive back-to-back).
//
// Flow control is credit-based, drop-oldest: the client grants N frame
// credits at open and tops them up as it consumes; the server only
// queues a frame onto the connection when a credit is available, and a
// stream whose client stalls sheds its oldest pending frames (counted
// in Dropped) instead of stalling the producer. Crucially the producers
// are never the session actors: counter streams read atomics that the
// hot path bumps for free, and ILA streams enqueue a non-blocking
// housekeeping poll that the actor serializes with ordinary commands —
// a slow or dead stream consumer can never back-pressure a paused-debug
// interaction.

// streamCredits is the default credit grant when OpStreamOpen carries
// no N; streamPending bounds the per-stream frame backlog (drop-oldest
// beyond it); streamInterval is the default flush/poll cadence.
const (
	streamCredits  = 32
	streamPending  = 64
	streamInterval = 50 * time.Millisecond
)

// stream is one open push channel on one connection.
type stream struct {
	id   uint64
	kind string // wire.StreamCounters, StreamILA, StreamHistory or StreamCompile
	c    *conn
	sess *session        // ILA and history streams only
	meta *zoomie.ILAMeta // ILA streams only

	// Compile streams subscribe to a farm job's progress at open so no
	// phase entry is missed between open and the producer loop starting.
	prog  <-chan farm.Progress
	unsub func()

	interval time.Duration
	quit     chan struct{}
	once     sync.Once

	mu      sync.Mutex
	credits int
	pending []*wire.Event
	seq     uint64
	dropped uint64
	gen     uint64 // history streams: keyframe generation cursor
}

func (st *stream) stop() { st.once.Do(func() { close(st.quit) }) }

// handleStream serves the three v3 stream ops inline on the read loop.
func (c *conn) handleStream(req *wire.Request) *wire.Response {
	resp := &wire.Response{ID: req.ID}
	switch req.Op {
	case wire.OpStreamOpen:
		st, werr := c.openStream(req)
		if werr != nil {
			resp.Err = werr
			return resp
		}
		resp.Stream = st.id
		resp.Session = req.Session
	case wire.OpStreamCredit:
		st := c.stream(req.Stream)
		if st == nil {
			resp.Err = wire.Errf(wire.CodeNoStream, "no stream %d on this connection", req.Stream)
			return resp
		}
		st.addCredits(req.N)
		resp.Stream = st.id
	case wire.OpStreamClose:
		st := c.takeStream(req.Stream)
		if st == nil {
			resp.Err = wire.Errf(wire.CodeNoStream, "no stream %d on this connection", req.Stream)
			return resp
		}
		st.stop()
		resp.Stream = st.id
	}
	return resp
}

// openStream validates the request and spawns the stream's goroutine.
func (c *conn) openStream(req *wire.Request) (*stream, *wire.Error) {
	st := &stream{
		kind:     req.Name,
		c:        c,
		interval: time.Duration(req.Value) * time.Millisecond,
		quit:     make(chan struct{}),
		credits:  req.N,
	}
	if st.interval <= 0 {
		st.interval = streamInterval
	}
	if st.credits <= 0 {
		st.credits = streamCredits
	}
	switch req.Name {
	case wire.StreamCounters:
		// Server-wide counters; no session needed.
	case wire.StreamILA:
		sess := c.srv.session(req.Session)
		if sess == nil {
			return nil, wire.Errf(wire.CodeNoSession, "no session %d", req.Session)
		}
		sess.mu.Lock()
		meta := sess.ilaMeta
		sess.mu.Unlock()
		if meta == nil {
			return nil, wire.Errf(wire.CodeBadRequest,
				"design %q has no ILA (try the ila-counter design)", sess.design)
		}
		st.sess, st.meta = sess, meta
	case wire.StreamHistory:
		sess := c.srv.session(req.Session)
		if sess == nil {
			return nil, wire.Errf(wire.CodeNoSession, "no session %d", req.Session)
		}
		sess.mu.Lock()
		enabled := sess.zs.HistoryEnabled()
		sess.mu.Unlock()
		if !enabled {
			return nil, wire.Errf(wire.CodeBadRequest,
				"history recording is disabled for design %q", sess.design)
		}
		st.sess = sess
	case wire.StreamCompile:
		// Session carries the farm job id: compile jobs are a server-wide
		// resource, not a debug session.
		job, ok := c.srv.farm.Job(req.Session)
		if !ok {
			return nil, wire.Errf(wire.CodeOp, "no compile job %d", req.Session)
		}
		st.prog, st.unsub = job.Subscribe()
	default:
		return nil, wire.Errf(wire.CodeBadRequest,
			"unknown stream kind %q (want %q, %q, %q or %q)",
			req.Name, wire.StreamCounters, wire.StreamILA, wire.StreamHistory, wire.StreamCompile)
	}

	c.streamMu.Lock()
	c.nextStream++
	st.id = c.nextStream
	c.streams[st.id] = st
	c.streamMu.Unlock()

	atomic.AddInt64(&c.srv.stats.streamsOpened, 1)
	c.srv.wg.Add(1)
	go st.run()
	return st, nil
}

// stream looks up an open stream by id.
func (c *conn) stream(id uint64) *stream {
	c.streamMu.Lock()
	defer c.streamMu.Unlock()
	return c.streams[id]
}

// takeStream removes and returns a stream (close path).
func (c *conn) takeStream(id uint64) *stream {
	c.streamMu.Lock()
	defer c.streamMu.Unlock()
	st := c.streams[id]
	delete(c.streams, id)
	return st
}

// closeStreams tears down every open stream when the connection dies.
func (c *conn) closeStreams() {
	c.streamMu.Lock()
	streams := make([]*stream, 0, len(c.streams))
	for _, st := range c.streams {
		streams = append(streams, st)
	}
	c.streams = make(map[uint64]*stream)
	c.streamMu.Unlock()
	for _, st := range streams {
		st.stop()
	}
}

// run is the stream's producer loop: one ticker, one flush per tick.
func (st *stream) run() {
	defer st.c.srv.wg.Done()
	if st.kind == wire.StreamCompile {
		st.runCompile()
		return
	}
	t := time.NewTicker(st.interval)
	defer t.Stop()

	var reader *obs.Reader
	var names []string
	var deltas []uint64
	if st.kind == wire.StreamCounters {
		reader = st.c.srv.reg.NewReader()
	}
	for {
		select {
		case <-st.quit:
			return
		case <-st.c.dead:
			return
		case <-t.C:
			switch st.kind {
			case wire.StreamCounters:
				var total uint64
				names, deltas, total = reader.Deltas(names[:0], deltas[:0])
				if total == 0 {
					st.drain() // idle interval: no frame, but retry backlog
					continue
				}
				// The frame owns copies — the reader reuses its slices.
				st.offer(&wire.Event{
					Kind:   wire.EvtStream,
					Stream: st.id,
					Count:  total,
					Names:  append([]string(nil), names...),
					Deltas: append([]uint64(nil), deltas...),
				})
			case wire.StreamILA:
				if !st.pollILA() {
					return // session gone; the stream dies with it
				}
			case wire.StreamHistory:
				if !st.pollHistory() {
					return // session gone; the stream dies with it
				}
			}
		}
	}
}

// runCompile is the producer loop for compile streams: event-driven
// rather than polled — the farm job publishes one Progress per phase
// entry plus its terminal state, and each becomes one frame (the phase
// in Names[0]). Backlog and credits behave like every other stream; a
// stalled client sheds oldest phases, never the compile itself.
func (st *stream) runCompile() {
	defer st.unsub()
	for {
		select {
		case <-st.quit:
			return
		case <-st.c.dead:
			return
		case p := <-st.prog:
			st.offer(&wire.Event{
				Kind:    wire.EvtStream,
				Stream:  st.id,
				Session: p.Job,
				Count:   1,
				Names:   []string{p.Phase},
			})
		}
	}
}

// pollILA enqueues the non-blocking housekeeping poll on the session
// actor; the actor uploads and re-arms a completed window and the reply
// callback converts it into a stream frame. Returns false once the
// session is gone. A full actor queue just skips this round — streaming
// yields to the client's own commands, never the other way around.
func (st *stream) pollILA() bool {
	werr := st.sess.enqueue(context.Background(), wire.Version,
		&wire.Request{Op: opIlaPoll}, func(resp *wire.Response) {
			if resp.Err != nil || resp.Trace == nil || len(resp.Trace.Rows) == 0 {
				return
			}
			st.offer(&wire.Event{
				Kind:    wire.EvtStream,
				Stream:  st.id,
				Session: st.sess.id,
				Count:   uint64(len(resp.Trace.Rows)),
				Names:   resp.Trace.Signals,
				Rows:    resp.Trace.Rows,
			})
		})
	if werr != nil && werr.Code == wire.CodeNoSession {
		return false
	}
	return true
}

// pollHistory enqueues the history housekeeping poll: the actor collects
// keyframes recorded since this stream's generation cursor and the reply
// becomes one scrubbing frame of [pos, cycle, bytes] rows. The cursor
// only advances in the reply, so a skipped round (full actor queue)
// re-asks for the same window next tick.
func (st *stream) pollHistory() bool {
	st.mu.Lock()
	gen := st.gen
	st.mu.Unlock()
	werr := st.sess.enqueue(context.Background(), wire.Version,
		&wire.Request{Op: opHistPoll, Value: gen}, func(resp *wire.Response) {
			if resp.Err != nil {
				return
			}
			st.mu.Lock()
			if resp.Cycles > st.gen {
				st.gen = resp.Cycles
			}
			st.mu.Unlock()
			if resp.Trace == nil || len(resp.Trace.Rows) == 0 {
				return
			}
			st.offer(&wire.Event{
				Kind:    wire.EvtStream,
				Stream:  st.id,
				Session: st.sess.id,
				Count:   uint64(len(resp.Trace.Rows)),
				Names:   resp.Trace.Signals,
				Rows:    resp.Trace.Rows,
			})
		})
	if werr != nil && werr.Code == wire.CodeNoSession {
		return false
	}
	return true
}

// offer queues one frame, shedding the oldest pending frame when the
// backlog is full, then drains whatever the current credits allow.
func (st *stream) offer(ev *wire.Event) {
	st.mu.Lock()
	st.seq++
	ev.Seq = st.seq
	if len(st.pending) >= streamPending {
		copy(st.pending, st.pending[1:])
		st.pending = st.pending[:len(st.pending)-1]
		st.dropped++
		atomic.AddInt64(&st.c.srv.stats.streamDropped, 1)
	}
	st.pending = append(st.pending, ev)
	st.drainLocked()
	st.mu.Unlock()
}

// addCredits tops up the grant and pushes out any backlog it unlocks.
func (st *stream) addCredits(n int) {
	if n <= 0 {
		n = 1
	}
	st.mu.Lock()
	st.credits += n
	st.drainLocked()
	st.mu.Unlock()
}

// drain retries the backlog without producing a new frame.
func (st *stream) drain() {
	st.mu.Lock()
	st.drainLocked()
	st.mu.Unlock()
}

// drainLocked moves pending frames into the connection outbox, one
// credit each, stopping when credits run out or the outbox is full (the
// frame stays pending — the next tick or credit retries it).
func (st *stream) drainLocked() {
	for st.credits > 0 && len(st.pending) > 0 {
		ev := st.pending[0]
		ev.Dropped = st.dropped // latest total travels with every frame
		select {
		case st.c.out <- wire.Evt(ev):
			st.pending[0] = nil
			st.pending = st.pending[1:]
			st.credits--
			atomic.AddInt64(&st.c.srv.stats.streamFrames, 1)
			atomic.AddInt64(&st.c.srv.stats.streamEvents, int64(ev.Count))
		default:
			return
		}
	}
	if len(st.pending) == 0 {
		st.pending = nil // let the backing array go once drained
	}
}
