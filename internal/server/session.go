package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zoomie"
	"zoomie/internal/dbg"
	"zoomie/internal/faults"
	"zoomie/internal/jtag"
	"zoomie/internal/wire"
)

// opProbe is the internal health-check op the prober enqueues; it never
// appears on the wire.
const opProbe = "_probe"

// opIlaPoll is the internal op an ILA stream's ticker enqueues: check
// whether the capture window completed; if so, upload it in one batched
// readback, re-arm the trigger, and hand the decoded rows back. Like
// opProbe it never appears on the wire and is serialized with the
// session's own commands by the actor, so streaming can never interleave
// with a paused-debug interaction.
const opIlaPoll = "_ilapoll"

// opHistPoll is the internal op a history stream's ticker enqueues:
// collect keyframes recorded since the stream's generation cursor
// (carried in Request.Value) and hand them back as [pos, cycle, bytes]
// rows for timeline scrubbing. Serialized by the actor like opIlaPoll.
const opHistPoll = "_histpoll"

// session is one attached design: a *zoomie.Session owned by a single
// actor goroutine that drains a request channel. The actor is how the
// server retrofits thread-safety onto the lock-free debugger — commands
// for a session are serialized by construction (no mutexes threaded
// through dbg), while different sessions run fully concurrently, so one
// slow Snapshot cannot block anyone else's stepping.
//
// The actor also owns the session's survival: when its board fails (a
// wedge, exhausted retries, unverifiable frames) it quarantines the
// lease, leases a fresh board, restores the last known-good snapshot —
// full scope, so breakpoints and pause state travel too — and re-runs
// the failing command, all without the client noticing more than a slow
// response.
type session struct {
	id     uint64
	design string
	zs     *zoomie.Session
	srv    *Server

	lease    *Lease
	injector atomic.Pointer[faults.Injector]

	// ilaMeta decodes this design's ILA capture windows; nil for entries
	// without an ILA (ila streams are then refused at open).
	ilaMeta *zoomie.ILAMeta

	reqs chan task
	quit chan struct{} // closed by Shutdown
	once sync.Once     // guards close(quit)

	mu     sync.Mutex // guards closed, the enqueue/teardown handoff, and zs/lease swaps
	closed bool

	// busy is the serialization tripwire: handle() CASes it 0->1 on
	// entry. Because only the actor goroutine calls handle, a failed CAS
	// means two commands interleaved mid-command — counted in stats and
	// asserted zero by the race stress test.
	busy int32

	// Actor-local state (only the actor goroutine touches these).
	lastPaused bool
	lastSnap   *zoomie.DebugSnapshot
	lastGood   *zoomie.DebugSnapshot // migration source; full scope
	replay     map[uint64]*replayRing
}

// replayRing remembers a client's most recent request results so a
// request replayed after a reconnect is answered from cache instead of
// executing twice — the idempotency half of auto-reconnect.
type replayRing struct {
	seqs  [replayDepth]uint64
	resps [replayDepth]*wire.Response
	n     int
}

// replayDepth bounds the per-client replay cache. Clients replay only
// requests that were in flight when the connection died, so a handful of
// slots suffices.
const replayDepth = 16

func (r *replayRing) get(seq uint64) *wire.Response {
	for i, s := range r.seqs {
		if s == seq {
			return r.resps[i]
		}
	}
	return nil
}

func (r *replayRing) put(seq uint64, resp *wire.Response) {
	r.seqs[r.n] = seq
	r.resps[r.n] = resp
	r.n = (r.n + 1) % replayDepth
}

// task is one queued command with its completion callback. ctx is the
// issuing connection's context: it is cancelled when that client's
// connection dies, so the actor abandons the command mid-batch instead
// of finishing cable work nobody will read. ver is the connection's
// negotiated protocol version, used to downgrade typed error codes for
// v1 clients.
type task struct {
	req   *wire.Request
	reply func(*wire.Response)
	ctx   context.Context
	ver   int
}

// queueDepth bounds per-session pipelining; a full queue pushes back
// with CodeBusy instead of buffering without bound.
const queueDepth = 64

func newSession(id uint64, design string, zs *zoomie.Session, srv *Server) *session {
	return &session{
		id:     id,
		design: design,
		zs:     zs,
		srv:    srv,
		reqs:   make(chan task, queueDepth),
		quit:   make(chan struct{}),
		replay: make(map[uint64]*replayRing),
	}
}

// enqueue hands a command to the actor. It never blocks: a torn-down
// session reports CodeNoSession, a full queue CodeBusy.
func (s *session) enqueue(ctx context.Context, ver int, req *wire.Request, reply func(*wire.Response)) *wire.Error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return wire.Errf(wire.CodeNoSession, "no session %d", s.id)
	}
	select {
	case s.reqs <- task{req: req, reply: reply, ctx: ctx, ver: ver}:
		return nil
	default:
		return wire.Errf(wire.CodeBusy, "session %d: command queue full (%d pending)", s.id, queueDepth)
	}
}

// signalQuit asks the actor to tear down (graceful shutdown path).
func (s *session) signalQuit() { s.once.Do(func() { close(s.quit) }) }

// cableStats snapshots the current cable's recovery counters; safe from
// any goroutine (the zs pointer swap during migration is mutex-guarded).
func (s *session) cableStats() jtag.CableStats {
	s.mu.Lock()
	zs := s.zs
	s.mu.Unlock()
	return zs.Cable.Stats()
}

// loop is the actor: one goroutine draining commands, arming an idle
// timer between them. When the timer fires the session auto-detaches
// and its board goes back to the pool.
func (s *session) loop() {
	defer s.srv.wg.Done()
	s.captureGood()
	idle := s.srv.cfg.IdleTimeout
	timer := time.NewTimer(idle)
	defer timer.Stop()
	for {
		select {
		case t := <-s.reqs:
			if t.req.Op == opProbe || t.req.Op == opIlaPoll || t.req.Op == opHistPoll {
				// Probes and ILA polls are housekeeping: no replay, no
				// latency sample, and crucially no idle-timer reset — a
				// probed or streamed session must still idle out.
				resp, detach := s.handle(t)
				t.reply(resp)
				if detach {
					s.teardown("board failed and could not be replaced")
					return
				}
				continue
			}
			if cached := s.replayHit(t.req); cached != nil {
				atomic.AddInt64(&s.srv.stats.replayHits, 1)
				t.reply(cached)
				continue
			}
			start := time.Now()
			resp, detach := s.handle(t)
			s.srv.stats.observeLatency(time.Since(start))
			atomic.AddInt64(&s.srv.stats.commandsServed, 1)
			s.srv.ctr.commands.Inc()
			s.replayStore(t.req, resp)
			t.reply(resp)
			if detach {
				s.teardown("detached by client")
				return
			}
			s.maybeEmitPaused(t.req.Op)
			if resp.Err == nil {
				s.maybeCaptureGood(t.req.Op)
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(idle)
		case <-timer.C:
			atomic.AddInt64(&s.srv.stats.idleReaped, 1)
			s.teardown(fmt.Sprintf("idle for %v", idle))
			return
		case <-s.quit:
			s.teardown("server shutdown")
			return
		}
	}
}

// replayHit answers a replayed request from the cache, or nil.
func (s *session) replayHit(req *wire.Request) *wire.Response {
	if req.Client == 0 || req.Seq == 0 {
		return nil
	}
	if ring := s.replay[req.Client]; ring != nil {
		return ring.get(req.Seq)
	}
	return nil
}

// replayStore remembers a sequenced request's response for replay dedupe.
func (s *session) replayStore(req *wire.Request, resp *wire.Response) {
	if req.Client == 0 || req.Seq == 0 {
		return
	}
	ring := s.replay[req.Client]
	if ring == nil {
		ring = &replayRing{}
		s.replay[req.Client] = ring
	}
	ring.put(req.Seq, resp)
}

// captureGood snapshots the full design state — user design and Debug
// Controller registers alike — as the migration source. Only meaningful
// under chaos; skipped (and free) otherwise.
func (s *session) captureGood() {
	if s.injector.Load() == nil {
		return
	}
	if snap, err := s.zs.Snapshot(""); err == nil {
		s.lastGood = snap
	}
}

// maybeCaptureGood refreshes the known-good snapshot after commands that
// changed state a migration must preserve.
func (s *session) maybeCaptureGood(op string) {
	switch op {
	case wire.OpPause, wire.OpResume, wire.OpStep, wire.OpUntil,
		wire.OpPoke, wire.OpPokeMem, wire.OpPokeBatch, wire.OpBreak,
		wire.OpClearBrk, wire.OpAssert, wire.OpSnapSave, wire.OpSnapRest,
		wire.OpHistSeek, wire.OpHistRewind, wire.OpHistRevCont, wire.OpHistLoad:
		s.captureGood()
	}
}

// teardown closes the session exactly once: it marks the session dead
// (new enqueues fail fast), answers every still-queued command with
// CodeNoSession, unregisters from the server, and closes the underlying
// zoomie.Session — which pauses the design, stops its clocks, and
// releases the board lease back to the pool.
func (s *session) teardown(reason string) {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	for {
		select {
		case t := <-s.reqs:
			t.reply(&wire.Response{ID: t.req.ID,
				Err: wire.Errf(wire.CodeNoSession, "session %d gone: %s", s.id, reason)})
			continue
		default:
		}
		break
	}
	s.srv.dropSession(s)
	s.zs.Close()
	s.srv.retire(s.zs, s.injector.Load())
	s.srv.broadcast(&wire.Event{Kind: wire.EvtDetached, Session: s.id, Detail: reason})
}

// maybeEmitPaused watches for the running->paused transition after
// clock-advancing commands and pushes a breakpoint-hit event to
// subscribers, so clients observe triggers without polling.
func (s *session) maybeEmitPaused(op string) {
	switch op {
	case wire.OpHistSeek, wire.OpHistRewind, wire.OpHistRevCont, wire.OpHistLoad:
		// Explicit time-travel always ends paused: sync the tracked state
		// so the next genuine trigger still produces an event, but emit
		// nothing — the response is the acknowledgement.
		if paused, err := s.zs.Paused(); err == nil {
			s.lastPaused = paused
		}
		return
	case wire.OpRun, wire.OpUntil, wire.OpStep, wire.OpResume, wire.OpPause:
	default:
		return
	}
	paused, err := s.zs.Paused()
	if err != nil {
		return
	}
	was := s.lastPaused
	s.lastPaused = paused
	// An explicit host pause is its own acknowledgement; only async
	// trigger-driven pauses become events.
	if paused && !was && op != wire.OpPause {
		cyc, _ := s.zs.Cycles()
		s.srv.broadcast(&wire.Event{Kind: wire.EvtPaused, Session: s.id, Op: op, Cycles: cyc})
	}
}

// isBoardFailure classifies errors the transport could not recover from —
// the signals that the board, not the command, is at fault.
func isBoardFailure(err error) bool {
	return errors.Is(err, faults.ErrWedged) ||
		errors.Is(err, jtag.ErrRetriesExhausted) ||
		errors.Is(err, jtag.ErrVerify) ||
		errors.Is(err, jtag.ErrDeadline)
}

// handle executes one command against the owned zoomie.Session. On a
// board failure it quarantines and migrates, then re-runs the command
// once on the fresh board. The second result asks the actor to tear the
// session down (client detach, or a board failure with no replacement).
func (s *session) handle(t task) (*wire.Response, bool) {
	if !atomic.CompareAndSwapInt32(&s.busy, 0, 1) {
		atomic.AddInt64(&s.srv.stats.interleaved, 1)
	}
	defer atomic.StoreInt32(&s.busy, 0)

	resp, detach := s.execute(t)
	if resp.Err != nil && resp.Err.Code == wire.CodeBoardFailed {
		if werr := s.migrate(resp.Err.Msg); werr != nil {
			return &wire.Response{ID: t.req.ID, Session: s.id, Err: werr}, true
		}
		resp, detach = s.execute(t)
	}
	return resp, detach
}

// migrate replaces the session's failed board: quarantine the lease,
// close the old session (fail-fast — the transport does not retry a
// wedged board), lease and configure a fresh board, and restore the last
// known-good snapshot onto it. The full-scope snapshot carries the Debug
// Controller registers, so armed breakpoints and the pause state survive
// the move.
func (s *session) migrate(cause string) *wire.Error {
	srv := s.srv
	leaseID := uint64(0)
	if s.lease != nil {
		leaseID = s.lease.ID
		s.lease.Quarantine()
	}
	srv.cfg.Logf("zoomied: session %d: board lease %d quarantined: %s", s.id, leaseID, cause)
	srv.broadcast(&wire.Event{Kind: wire.EvtQuarantined, Session: s.id,
		Detail: fmt.Sprintf("board lease %d: %s", leaseID, cause)})

	old := s.zs
	oldInj := s.injector.Load()
	oldHist := old.DetachHistory() // history survives the board, not the session
	old.Close()                    // errors expected on a failed board; lease already benched
	srv.retire(old, oldInj)

	nz, nmeta, ninj, nlease, err := srv.newSessionFor(s.design)
	if err != nil {
		atomic.AddInt64(&srv.stats.migrationsFail, 1)
		return wire.Errf(wire.CodeBoardFailed,
			"session %d: board failed (%s) and no replacement: %v", s.id, cause, err)
	}
	// Transplant the recorded past (and savestates) onto the fresh board
	// before restoring state, so the restore lands in history as host
	// writes. Purely host-side; a layout mismatch just forfeits history.
	if aerr := nz.AdoptHistory(oldHist); aerr != nil {
		srv.cfg.Logf("zoomied: session %d: history not transplanted: %v", s.id, aerr)
	}
	if s.lastGood != nil {
		if rerr := nz.Restore(s.lastGood); rerr != nil {
			nz.Close()
			srv.retire(nz, ninj)
			atomic.AddInt64(&srv.stats.migrationsFail, 1)
			return wire.Errf(wire.CodeBoardFailed,
				"session %d: snapshot restore on replacement board: %v", s.id, rerr)
		}
	}
	s.mu.Lock()
	s.zs = nz
	s.lease = nlease
	s.ilaMeta = nmeta
	s.mu.Unlock()
	s.injector.Store(ninj)
	atomic.AddInt64(&srv.stats.migrations, 1)
	srv.cfg.Logf("zoomied: session %d migrated to board lease %d", s.id, nlease.ID)
	srv.broadcast(&wire.Event{Kind: wire.EvtMigrated, Session: s.id,
		Detail: fmt.Sprintf("restored on board lease %d", nlease.ID)})
	return nil
}

// execute runs one command. Board failures come back as CodeBoardFailed
// so handle can migrate and retry; everything else is classified by
// wire.CodeFor (typed debugger codes on v2+ connections, plain CodeOp on
// v1). A cancelled issuing connection aborts cable work mid-batch and
// reports CodeCancelled — never a board failure, so it cannot trigger a
// spurious migration.
func (s *session) execute(t task) (*wire.Response, bool) {
	req, ctx := t.req, t.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	resp := &wire.Response{ID: req.ID, Session: s.id}
	fail := func(err error) (*wire.Response, bool) {
		switch {
		case ctx.Err() != nil || wire.CodeFor(err) == wire.CodeCancelled:
			resp.Err = wire.Errf(wire.CodeCancelled, "%s", err)
		case isBoardFailure(err):
			resp.Err = wire.Errf(wire.CodeBoardFailed, "%s", err)
		default:
			code := wire.CodeFor(err)
			if t.ver != 0 && t.ver < 2 && code != wire.CodeOp {
				code = wire.CodeOp // v1 clients never saw typed codes
			}
			resp.Err = wire.Errf(code, "%s", err)
		}
		return resp, false
	}
	switch req.Op {
	case opProbe:
		atomic.AddInt64(&s.srv.stats.probes, 1)
		if err := s.zs.HealthCheck(); err != nil {
			atomic.AddInt64(&s.srv.stats.probeFailures, 1)
			return fail(err)
		}

	case opIlaPoll:
		meta := s.ilaMeta
		if meta == nil {
			return fail(fmt.Errorf("design %q has no ILA", s.design))
		}
		full, err := s.zs.Peek(meta.CtrlPrefix + ".full")
		if err != nil {
			return fail(err)
		}
		if full == 0 {
			break // window still filling; the ticker will ask again
		}
		// One planned pass uploads the whole window — one readback per
		// SLR, not one cable round trip per captured cycle.
		items := make([]dbg.PlanItem, meta.Depth)
		for i := range items {
			items[i] = dbg.PlanItem{Name: meta.BufferName, Mem: true, Addr: i}
		}
		words, err := s.zs.ReadPlan(ctx, items)
		if err != nil {
			return fail(err)
		}
		rows := make([][]uint64, len(words))
		for i, w := range words {
			rows[i] = meta.DecodeVals(w)
		}
		if err := meta.Rearm(s.zs); err != nil {
			return fail(err)
		}
		atomic.AddInt64(&s.srv.stats.ilaWindows, 1)
		// The decoded window travels back through the Trace shape the
		// stream layer converts into an EvtStream frame.
		resp.Trace = &wire.Trace{Signals: meta.ProbeNames(), Rows: rows}

	case opHistPoll:
		rows, next := s.zs.HistoryKeyframesSince(req.Value)
		resp.Cycles = next
		if len(rows) > 0 {
			resp.Trace = &wire.Trace{Signals: []string{"pos", "cycle", "bytes"}, Rows: rows}
		}

	case wire.OpDetach:
		return resp, true

	case wire.OpRun:
		n := req.N
		if n <= 0 {
			n = 100
		}
		s.zs.Run(n)
		resp.Ran = n
		s.srv.ctr.cycles.Add(uint64(n))

	case wire.OpPause:
		if err := s.zs.Pause(); err != nil {
			return fail(err)
		}

	case wire.OpResume:
		if err := s.zs.Resume(); err != nil {
			return fail(err)
		}

	case wire.OpStep:
		n := req.N
		if n <= 0 {
			n = 1
		}
		if err := s.zs.Step(n); err != nil {
			return fail(err)
		}
		s.srv.ctr.cycles.Add(uint64(n))

	case wire.OpUntil:
		max := req.N
		if max <= 0 {
			max = 1 << 20
		}
		ran, err := s.zs.RunUntilPaused(max)
		resp.Ran = ran
		if err != nil {
			return fail(err)
		}
		s.srv.ctr.cycles.Add(uint64(ran))

	case wire.OpPeek:
		v, err := s.zs.PeekCtx(ctx, req.Name)
		if err != nil {
			return fail(err)
		}
		resp.Value = v
		s.srv.ctr.peeks.Inc()

	case wire.OpPoke:
		if err := s.zs.PokeCtx(ctx, req.Name, req.Value); err != nil {
			return fail(err)
		}
		s.srv.ctr.pokes.Inc()

	case wire.OpPeekMem:
		v, err := s.zs.PeekMemCtx(ctx, req.Name, req.Addr)
		if err != nil {
			return fail(err)
		}
		resp.Value = v
		s.srv.ctr.peeks.Inc()

	case wire.OpPokeMem:
		if err := s.zs.PokeMemCtx(ctx, req.Name, req.Addr, req.Value); err != nil {
			return fail(err)
		}
		s.srv.ctr.pokes.Inc()

	case wire.OpPeekBatch:
		items := make([]dbg.PlanItem, len(req.Items))
		for i, it := range req.Items {
			items[i] = dbg.PlanItem{Name: it.Name, Mem: it.Mem, Addr: it.Addr}
		}
		// One planned pass for the whole batch: one readback per SLR the
		// request set touches, however many names the client sent.
		vals, err := s.zs.ReadPlan(ctx, items)
		resp.Values = vals // partial-batch results travel with the error
		if err != nil {
			return fail(err)
		}
		s.srv.ctr.peeks.Add(uint64(len(items)))

	case wire.OpPokeBatch:
		items := make([]dbg.PlanItem, len(req.Items))
		for i, it := range req.Items {
			items[i] = dbg.PlanItem{Name: it.Name, Mem: it.Mem, Addr: it.Addr, Value: it.Value}
		}
		if err := s.zs.WritePlan(ctx, items); err != nil {
			return fail(err)
		}
		s.srv.ctr.pokes.Add(uint64(len(items)))

	case wire.OpBreak:
		mode := zoomie.BreakAny
		if req.Mode == "all" {
			mode = zoomie.BreakAll
		}
		if err := s.zs.SetValueBreakpoint(req.Name, req.Value, mode); err != nil {
			return fail(err)
		}

	case wire.OpClearBrk:
		if err := s.zs.ClearBreakpoints(); err != nil {
			return fail(err)
		}

	case wire.OpAssert:
		if err := s.zs.EnableAssertion(req.Name, req.Enable); err != nil {
			return fail(err)
		}

	case wire.OpSnapSave:
		snap, err := s.zs.SnapshotCtx(ctx, "dut")
		if err != nil {
			return fail(err)
		}
		s.lastSnap = snap
		resp.Regs = len(snap.Regs)
		resp.Mems = len(snap.Mems)
		resp.Cycles = snap.Cycle

	case wire.OpSnapRest:
		if s.lastSnap == nil {
			return fail(fmt.Errorf("no snapshot saved"))
		}
		if err := s.zs.RestoreCtx(ctx, s.lastSnap); err != nil {
			return fail(err)
		}

	case wire.OpInspect:
		lines, err := s.zs.Inspect(req.Prefix)
		if err != nil {
			return fail(err)
		}
		resp.Lines = lines

	case wire.OpTrace:
		tr, err := s.zs.TraceStepsCtx(ctx, req.Signals, req.N)
		if err != nil {
			return fail(err)
		}
		resp.Trace = &wire.Trace{Signals: tr.Signals, Widths: tr.Widths, Rows: tr.Rows}

	case wire.OpInput:
		if err := s.zs.PokeInput(req.Name, req.Value); err != nil {
			return fail(err)
		}
		s.srv.ctr.pokes.Inc()

	case wire.OpOutput:
		v, err := s.zs.PeekOutput(req.Name)
		if err != nil {
			return fail(err)
		}
		resp.Value = v
		s.srv.ctr.peeks.Inc()

	case wire.OpHistSeek:
		tl, err := s.zs.Seek(req.Value)
		if err != nil {
			return fail(err)
		}
		resp.Ran = tl
		resp.Cycles, _ = s.zs.Cycles()

	case wire.OpHistRewind:
		n := req.N
		if n <= 0 {
			n = 1
		}
		cyc, tl, err := s.zs.Rewind(uint64(n))
		if err != nil {
			return fail(err)
		}
		resp.Cycles = cyc
		resp.Ran = tl

	case wire.OpHistRevCont:
		cyc, found, err := s.zs.ReverseContinue()
		if err != nil {
			return fail(err)
		}
		resp.Cycles = cyc
		resp.Paused = found

	case wire.OpHistSave:
		regs, mems, cyc, err := s.zs.SaveState(req.Name)
		if err != nil {
			return fail(err)
		}
		resp.Regs = regs
		resp.Mems = mems
		resp.Cycles = cyc

	case wire.OpHistLoad:
		cyc, err := s.zs.LoadState(req.Name)
		if err != nil {
			return fail(err)
		}
		resp.Cycles = cyc

	case wire.OpHistStat:
		resp.Lines = s.zs.HistoryStatusLines()

	case wire.OpHistTimelines:
		resp.Lines = s.zs.TimelineLines()

	case wire.OpStateExport:
		// Checkpoint: the session's full-scope snapshot (Debug Controller
		// registers included, so breakpoints and pause state travel) plus
		// the encoded history engine, serialized and chunked into Lines.
		// Runs on the actor like any command, so the blob is a consistent
		// point-in-time cut between ops.
		snap, err := s.zs.SnapshotCtx(ctx, "")
		if err != nil {
			return fail(err)
		}
		blob, err := encodeExport(snap, s.zs.EncodeHistory())
		if err != nil {
			return fail(err)
		}
		resp.Lines = blob
		resp.Cycles = snap.Cycle

	case wire.OpSessStat:
		paused, err := s.zs.Paused()
		if err != nil {
			return fail(err)
		}
		cycles, err := s.zs.Cycles()
		if err != nil {
			return fail(err)
		}
		resp.Paused = paused
		resp.Cycles = cycles
		resp.ElapsedNS = s.zs.Elapsed().Nanoseconds()

	default:
		resp.Err = wire.Errf(wire.CodeUnknownOp, "unknown op %q", req.Op)
	}
	return resp, false
}
