package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zoomie"
	"zoomie/internal/wire"
)

// session is one attached design: a *zoomie.Session owned by a single
// actor goroutine that drains a request channel. The actor is how the
// server retrofits thread-safety onto the lock-free debugger — commands
// for a session are serialized by construction (no mutexes threaded
// through dbg), while different sessions run fully concurrently, so one
// slow Snapshot cannot block anyone else's stepping.
type session struct {
	id     uint64
	design string
	zs     *zoomie.Session
	srv    *Server

	reqs chan task
	quit chan struct{} // closed by Shutdown
	once sync.Once     // guards close(quit)

	mu     sync.Mutex // guards closed and the enqueue/teardown handoff
	closed bool

	// busy is the serialization tripwire: handle() CASes it 0->1 on
	// entry. Because only the actor goroutine calls handle, a failed CAS
	// means two commands interleaved mid-command — counted in stats and
	// asserted zero by the race stress test.
	busy int32

	// Actor-local state (only the actor goroutine touches these).
	lastPaused bool
	lastSnap   *zoomie.DebugSnapshot
}

// task is one queued command with its completion callback.
type task struct {
	req   *wire.Request
	reply func(*wire.Response)
}

// queueDepth bounds per-session pipelining; a full queue pushes back
// with CodeBusy instead of buffering without bound.
const queueDepth = 64

func newSession(id uint64, design string, zs *zoomie.Session, srv *Server) *session {
	return &session{
		id:     id,
		design: design,
		zs:     zs,
		srv:    srv,
		reqs:   make(chan task, queueDepth),
		quit:   make(chan struct{}),
	}
}

// enqueue hands a command to the actor. It never blocks: a torn-down
// session reports CodeNoSession, a full queue CodeBusy.
func (s *session) enqueue(req *wire.Request, reply func(*wire.Response)) *wire.Error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return wire.Errf(wire.CodeNoSession, "no session %d", s.id)
	}
	select {
	case s.reqs <- task{req: req, reply: reply}:
		return nil
	default:
		return wire.Errf(wire.CodeBusy, "session %d: command queue full (%d pending)", s.id, queueDepth)
	}
}

// signalQuit asks the actor to tear down (graceful shutdown path).
func (s *session) signalQuit() { s.once.Do(func() { close(s.quit) }) }

// loop is the actor: one goroutine draining commands, arming an idle
// timer between them. When the timer fires the session auto-detaches
// and its board goes back to the pool.
func (s *session) loop() {
	defer s.srv.wg.Done()
	idle := s.srv.cfg.IdleTimeout
	timer := time.NewTimer(idle)
	defer timer.Stop()
	for {
		select {
		case t := <-s.reqs:
			start := time.Now()
			resp, detach := s.handle(t.req)
			s.srv.stats.observeLatency(time.Since(start))
			atomic.AddInt64(&s.srv.stats.commandsServed, 1)
			t.reply(resp)
			if detach {
				s.teardown("detached by client")
				return
			}
			s.maybeEmitPaused(t.req.Op)
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(idle)
		case <-timer.C:
			atomic.AddInt64(&s.srv.stats.idleReaped, 1)
			s.teardown(fmt.Sprintf("idle for %v", idle))
			return
		case <-s.quit:
			s.teardown("server shutdown")
			return
		}
	}
}

// teardown closes the session exactly once: it marks the session dead
// (new enqueues fail fast), answers every still-queued command with
// CodeNoSession, unregisters from the server, and closes the underlying
// zoomie.Session — which pauses the design, stops its clocks, and
// releases the board lease back to the pool.
func (s *session) teardown(reason string) {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	for {
		select {
		case t := <-s.reqs:
			t.reply(&wire.Response{ID: t.req.ID,
				Err: wire.Errf(wire.CodeNoSession, "session %d gone: %s", s.id, reason)})
			continue
		default:
		}
		break
	}
	s.srv.dropSession(s)
	s.zs.Close()
	s.srv.broadcast(&wire.Event{Kind: wire.EvtDetached, Session: s.id, Detail: reason})
}

// maybeEmitPaused watches for the running->paused transition after
// clock-advancing commands and pushes a breakpoint-hit event to
// subscribers, so clients observe triggers without polling.
func (s *session) maybeEmitPaused(op string) {
	switch op {
	case wire.OpRun, wire.OpUntil, wire.OpStep, wire.OpResume, wire.OpPause:
	default:
		return
	}
	paused, err := s.zs.Paused()
	if err != nil {
		return
	}
	was := s.lastPaused
	s.lastPaused = paused
	// An explicit host pause is its own acknowledgement; only async
	// trigger-driven pauses become events.
	if paused && !was && op != wire.OpPause {
		cyc, _ := s.zs.Cycles()
		s.srv.broadcast(&wire.Event{Kind: wire.EvtPaused, Session: s.id, Op: op, Cycles: cyc})
	}
}

// handle executes one command against the owned zoomie.Session. The
// second result asks the actor to tear the session down (detach).
func (s *session) handle(req *wire.Request) (*wire.Response, bool) {
	if !atomic.CompareAndSwapInt32(&s.busy, 0, 1) {
		atomic.AddInt64(&s.srv.stats.interleaved, 1)
	}
	defer atomic.StoreInt32(&s.busy, 0)

	resp := &wire.Response{ID: req.ID, Session: s.id}
	fail := func(err error) (*wire.Response, bool) {
		resp.Err = wire.Errf(wire.CodeOp, "%s", err)
		return resp, false
	}
	switch req.Op {
	case wire.OpDetach:
		return resp, true

	case wire.OpRun:
		n := req.N
		if n <= 0 {
			n = 100
		}
		s.zs.Run(n)
		resp.Ran = n

	case wire.OpPause:
		if err := s.zs.Pause(); err != nil {
			return fail(err)
		}

	case wire.OpResume:
		if err := s.zs.Resume(); err != nil {
			return fail(err)
		}

	case wire.OpStep:
		n := req.N
		if n <= 0 {
			n = 1
		}
		if err := s.zs.Step(n); err != nil {
			return fail(err)
		}

	case wire.OpUntil:
		max := req.N
		if max <= 0 {
			max = 1 << 20
		}
		ran, err := s.zs.RunUntilPaused(max)
		resp.Ran = ran
		if err != nil {
			return fail(err)
		}

	case wire.OpPeek:
		v, err := s.zs.Peek(req.Name)
		if err != nil {
			return fail(err)
		}
		resp.Value = v

	case wire.OpPoke:
		if err := s.zs.Poke(req.Name, req.Value); err != nil {
			return fail(err)
		}

	case wire.OpPeekMem:
		v, err := s.zs.PeekMem(req.Name, req.Addr)
		if err != nil {
			return fail(err)
		}
		resp.Value = v

	case wire.OpPokeMem:
		if err := s.zs.PokeMem(req.Name, req.Addr, req.Value); err != nil {
			return fail(err)
		}

	case wire.OpBreak:
		mode := zoomie.BreakAny
		if req.Mode == "all" {
			mode = zoomie.BreakAll
		}
		if err := s.zs.SetValueBreakpoint(req.Name, req.Value, mode); err != nil {
			return fail(err)
		}

	case wire.OpClearBrk:
		if err := s.zs.ClearBreakpoints(); err != nil {
			return fail(err)
		}

	case wire.OpAssert:
		if err := s.zs.EnableAssertion(req.Name, req.Enable); err != nil {
			return fail(err)
		}

	case wire.OpSnapSave:
		snap, err := s.zs.Snapshot("dut")
		if err != nil {
			return fail(err)
		}
		s.lastSnap = snap
		resp.Regs = len(snap.Regs)
		resp.Mems = len(snap.Mems)
		resp.Cycles = snap.Cycle

	case wire.OpSnapRest:
		if s.lastSnap == nil {
			return fail(fmt.Errorf("no snapshot saved"))
		}
		if err := s.zs.Restore(s.lastSnap); err != nil {
			return fail(err)
		}

	case wire.OpInspect:
		lines, err := s.zs.Inspect(req.Prefix)
		if err != nil {
			return fail(err)
		}
		resp.Lines = lines

	case wire.OpTrace:
		tr, err := s.zs.TraceSteps(req.Signals, req.N)
		if err != nil {
			return fail(err)
		}
		resp.Trace = &wire.Trace{Signals: tr.Signals, Widths: tr.Widths, Rows: tr.Rows}

	case wire.OpInput:
		if err := s.zs.PokeInput(req.Name, req.Value); err != nil {
			return fail(err)
		}

	case wire.OpOutput:
		v, err := s.zs.PeekOutput(req.Name)
		if err != nil {
			return fail(err)
		}
		resp.Value = v

	case wire.OpSessStat:
		paused, err := s.zs.Paused()
		if err != nil {
			return fail(err)
		}
		cycles, err := s.zs.Cycles()
		if err != nil {
			return fail(err)
		}
		resp.Paused = paused
		resp.Cycles = cycles
		resp.ElapsedNS = s.zs.Elapsed().Nanoseconds()

	default:
		resp.Err = wire.Errf(wire.CodeUnknownOp, "unknown op %q", req.Op)
	}
	return resp, false
}
