package server

import (
	"encoding/json"
	"io"
	"sync/atomic"
	"time"

	"zoomie/internal/wire"
)

// stats holds the server-wide counters behind the status wire command
// and the expvar-style dump. All fields are touched with atomics; the
// pool keeps its own counters under its lock.
type stats struct {
	sessionsActive int64
	sessionsTotal  int64
	commandsServed int64
	bytesIn        int64
	bytesOut       int64
	events         int64
	eventsDropped  int64
	idleReaped     int64
	interleaved    int64

	latency [len(latencyBoundsUS)]int64
}

// latencyBoundsUS mirrors wire.LatencyBounds: upper bounds in µs, last
// bucket unbounded.
var latencyBoundsUS = [...]int64{100, 1000, 10_000, 100_000, 1_000_000, -1}

func (st *stats) observeLatency(d time.Duration) {
	us := d.Microseconds()
	for i, b := range latencyBoundsUS {
		if b < 0 || us <= b {
			atomic.AddInt64(&st.latency[i], 1)
			return
		}
	}
}

// Stats snapshots the server counters into the wire representation.
func (s *Server) Stats() *wire.Stats {
	st := &s.stats
	out := &wire.Stats{
		SessionsActive: atomic.LoadInt64(&st.sessionsActive),
		SessionsTotal:  atomic.LoadInt64(&st.sessionsTotal),
		CommandsServed: atomic.LoadInt64(&st.commandsServed),
		BytesIn:        atomic.LoadInt64(&st.bytesIn),
		BytesOut:       atomic.LoadInt64(&st.bytesOut),
		Events:         atomic.LoadInt64(&st.events),
		EventsDropped:  atomic.LoadInt64(&st.eventsDropped),
		IdleReaped:     atomic.LoadInt64(&st.idleReaped),
		Interleaved:    atomic.LoadInt64(&st.interleaved),
		PoolCapacity:   int64(s.pool.Capacity()),
		PoolInUse:      int64(s.pool.InUse()),
	}
	_, denied, _ := s.pool.Counters()
	out.PoolDenied = denied
	out.LatencyBuckets = make([]int64, len(st.latency))
	for i := range st.latency {
		out.LatencyBuckets[i] = atomic.LoadInt64(&st.latency[i])
	}
	return out
}

// WriteStats dumps the counters as indented JSON — the expvar-style
// escape hatch for scraping zoomied without speaking the wire protocol.
func (s *Server) WriteStats(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Stats())
}
