package server

import (
	"encoding/json"
	"io"
	"sync/atomic"
	"time"

	"zoomie"
	"zoomie/internal/faults"
	"zoomie/internal/wire"
)

// stats holds the server-wide counters behind the status wire command
// and the expvar-style dump. All fields are touched with atomics; the
// pool keeps its own counters under its lock.
type stats struct {
	sessionsActive int64
	sessionsTotal  int64
	commandsServed int64
	bytesIn        int64
	bytesOut       int64
	events         int64
	eventsDropped  int64
	idleReaped     int64
	interleaved    int64

	// Robustness counters (chaos / self-healing).
	probes         int64
	probeFailures  int64
	migrations     int64
	migrationsFail int64
	reconnects     int64
	replayHits     int64

	// Transport counters of retired sessions, accumulated at teardown and
	// migration so recovery work survives the cable that did it. Stats()
	// adds the live sessions' cables on top.
	jtagRetries    int64
	jtagReReads    int64
	jtagRewrites   int64
	faultsInjected int64

	// Streaming observability counters (v3).
	streamsOpened int64
	streamFrames  int64
	streamEvents  int64
	streamDropped int64
	ilaWindows    int64

	latency [len(latencyBoundsUS)]int64
}

// latencyBoundsUS mirrors wire.LatencyBounds: upper bounds in µs, last
// bucket unbounded.
var latencyBoundsUS = [...]int64{100, 1000, 10_000, 100_000, 1_000_000, -1}

func (st *stats) observeLatency(d time.Duration) {
	us := d.Microseconds()
	for i, b := range latencyBoundsUS {
		if b < 0 || us <= b {
			atomic.AddInt64(&st.latency[i], 1)
			return
		}
	}
}

// retire folds a closing session's transport counters into the server
// totals, so cable recovery work and injected-fault counts outlive the
// session that accrued them.
func (s *Server) retire(zs *zoomie.Session, inj *faults.Injector) {
	cs := zs.Cable.Stats()
	atomic.AddInt64(&s.stats.jtagRetries, cs.Retries)
	atomic.AddInt64(&s.stats.jtagReReads, cs.ReReads)
	atomic.AddInt64(&s.stats.jtagRewrites, cs.Rewrites)
	if inj != nil {
		atomic.AddInt64(&s.stats.faultsInjected, inj.Stats().Total())
	}
}

// Stats snapshots the server counters into the wire representation.
func (s *Server) Stats() *wire.Stats {
	st := &s.stats
	out := &wire.Stats{
		SessionsActive: atomic.LoadInt64(&st.sessionsActive),
		SessionsTotal:  atomic.LoadInt64(&st.sessionsTotal),
		CommandsServed: atomic.LoadInt64(&st.commandsServed),
		BytesIn:        atomic.LoadInt64(&st.bytesIn),
		BytesOut:       atomic.LoadInt64(&st.bytesOut),
		Events:         atomic.LoadInt64(&st.events),
		EventsDropped:  atomic.LoadInt64(&st.eventsDropped),
		IdleReaped:     atomic.LoadInt64(&st.idleReaped),
		Interleaved:    atomic.LoadInt64(&st.interleaved),
		PoolCapacity:   int64(s.pool.Capacity()),
		PoolInUse:      int64(s.pool.InUse()),

		PoolQuarantined: int64(s.pool.Quarantined()),
		Quarantines:     s.pool.QuarantineCount(),
		Probes:          atomic.LoadInt64(&st.probes),
		ProbeFailures:   atomic.LoadInt64(&st.probeFailures),
		Migrations:      atomic.LoadInt64(&st.migrations),
		MigrationsFail:  atomic.LoadInt64(&st.migrationsFail),
		Reconnects:      atomic.LoadInt64(&st.reconnects),
		ReplayHits:      atomic.LoadInt64(&st.replayHits),
		JtagRetries:     atomic.LoadInt64(&st.jtagRetries),
		JtagReReads:     atomic.LoadInt64(&st.jtagReReads),
		JtagRewrites:    atomic.LoadInt64(&st.jtagRewrites),
		FaultsInjected:  atomic.LoadInt64(&st.faultsInjected),

		StreamsOpened: atomic.LoadInt64(&st.streamsOpened),
		StreamFrames:  atomic.LoadInt64(&st.streamFrames),
		StreamEvents:  atomic.LoadInt64(&st.streamEvents),
		StreamDropped: atomic.LoadInt64(&st.streamDropped),
		IlaWindows:    atomic.LoadInt64(&st.ilaWindows),
	}
	_, denied, _ := s.pool.Counters()
	out.PoolDenied = denied

	// Fold in the live sessions' cable and injector counters (atomic
	// reads on their side; the session list is copied under the server
	// lock, cable pointers under each session's lock).
	s.mu.Lock()
	live := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	for _, sess := range live {
		cs := sess.cableStats()
		out.JtagRetries += cs.Retries
		out.JtagReReads += cs.ReReads
		out.JtagRewrites += cs.Rewrites
		if inj := sess.injector.Load(); inj != nil {
			out.FaultsInjected += inj.Stats().Total()
		}
	}

	out.LatencyBuckets = make([]int64, len(st.latency))
	for i := range st.latency {
		out.LatencyBuckets[i] = atomic.LoadInt64(&st.latency[i])
	}
	return out
}

// WriteStats dumps the counters as indented JSON — the expvar-style
// escape hatch for scraping zoomied without speaking the wire protocol.
func (s *Server) WriteStats(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Stats())
}
