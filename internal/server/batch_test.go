package server_test

import (
	"context"
	"errors"
	"testing"

	"zoomie/internal/client"
	"zoomie/internal/dberr"
	"zoomie/internal/dbg"
	"zoomie/internal/server"
	"zoomie/internal/wire"
)

// TestRemoteBatch drives the v2 batch ops end to end: one round trip
// reads several aliases of a register consistently, one round trip
// forces a value, and the typed dberr classification survives the wire —
// errors.Is gives the same answers as against a local Debugger, with the
// message text unchanged.
func TestRemoteBatch(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() != wire.Version {
		t.Fatalf("negotiated version %d, want %d", c.Version(), wire.Version)
	}
	sess, err := c.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Pause(); err != nil {
		t.Fatal(err)
	}

	if err := sess.PokeBatch([]dbg.PlanItem{{Name: "cnt", Value: 777}}); err != nil {
		t.Fatal(err)
	}
	vals, err := sess.PeekBatch([]dbg.PlanItem{{Name: "cnt"}, {Name: "dut.cnt"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 777 || vals[1] != 777 {
		t.Errorf("batched peek = %v, want [777 777]", vals)
	}

	// Typed errors across the wire.
	_, err = sess.PeekBatch([]dbg.PlanItem{{Name: "cnt"}, {Name: "nosuchreg"}})
	if !errors.Is(err, dberr.ErrUnknownState) {
		t.Errorf("remote unknown name: errors.Is(ErrUnknownState) = false for %v", err)
	}
	wantMsg := `dbg: no state element "nosuchreg" (wires are not state; read the registers feeding them)`
	if err == nil || err.Error() != wantMsg {
		t.Errorf("remote error text changed:\n got %q\nwant %q", err, wantMsg)
	}
	if _, err := sess.PeekMem("cnt", 0); !errors.Is(err, dberr.ErrIsRegister) {
		t.Errorf("remote PeekMem on register: errors.Is(ErrIsRegister) = false for %v", err)
	}
	if err := sess.PokeBatch([]dbg.PlanItem{{Name: "cnt", Value: 1 << 20}}); !errors.Is(err, dberr.ErrWidthMismatch) {
		t.Errorf("remote oversized poke: errors.Is(ErrWidthMismatch) = false for %v", err)
	}
}

// TestRemoteBatchCancellation: a context cancelled client-side aborts the
// wait promptly and classifies as context.Canceled, exactly like the
// local PeekBatchCtx.
func TestRemoteBatchCancellation(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Pause(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sess.PeekBatchCtx(ctx, []dbg.PlanItem{{Name: "cnt"}})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled remote batch returned %v, want context.Canceled", err)
	}
	if errors.Is(err, dberr.ErrPartialBatch) {
		t.Error("remote cancellation misclassified as a partial batch")
	}
	// The connection is still healthy after a cancellation.
	if v, err := sess.Peek("cnt"); err != nil {
		t.Fatalf("peek after cancellation: %v", err)
	} else if _, err := sess.PeekBatch([]dbg.PlanItem{{Name: "cnt"}}); err != nil {
		t.Fatalf("batch after cancellation: %v (peek said %d)", err, v)
	}
}

// TestV1ClientCompat pins the downgrade path: a client offering protocol
// v1 negotiates v1, its batch API transparently degrades to per-signal
// round trips, and sending a raw v2 batch op on the v1 connection is
// refused the same way an old server would refuse it.
func TestV1ClientCompat(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 1})
	c, err := client.DialOptions(addr, client.Options{ProtocolVersion: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() != 1 {
		t.Fatalf("negotiated version %d, want 1", c.Version())
	}
	sess, err := c.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := sess.PokeBatch([]dbg.PlanItem{{Name: "cnt", Value: 55}}); err != nil {
		t.Fatal(err)
	}
	vals, err := sess.PeekBatch([]dbg.PlanItem{{Name: "cnt"}, {Name: "dut.cnt"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 55 || vals[1] != 55 {
		t.Errorf("v1 fallback peek = %v, want [55 55]", vals)
	}
	// Typed errors downgrade to the generic op code for v1 clients but
	// keep their text.
	_, err = sess.PeekBatch([]dbg.PlanItem{{Name: "nosuchreg"}})
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeOp {
		t.Errorf("v1 error code = %v, want CodeOp", err)
	}

	// A raw v2 op on the v1-negotiated connection is an unknown op.
	_, err = c.CallCtx(context.Background(), &wire.Request{
		Op: wire.OpPeekBatch, Session: sess.ID,
		Items: []wire.BatchItem{{Name: "cnt"}},
	})
	if !errors.As(err, &we) || we.Code != wire.CodeUnknownOp {
		t.Errorf("raw v2 op on v1 conn = %v, want CodeUnknownOp", err)
	}
}
