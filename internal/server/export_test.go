package server_test

import (
	"context"
	"testing"

	"zoomie/internal/client"
	"zoomie/internal/dbg"
	"zoomie/internal/server"
	"zoomie/internal/wire"
)

// TestStateExportImport drives the cross-daemon failover transport
// directly: debug a session into an interesting state (breakpoint armed,
// paused mid-run, history recorded), export it, import the blob on a
// *different* server, and require the imported session to behave
// byte-identically — values, pause state, armed breakpoint, and a
// time-travel seek into pre-export history.
func TestStateExportImport(t *testing.T) {
	_, addrA := startServer(t, server.Config{PoolSize: 2})
	_, addrB := startServer(t, server.Config{PoolSize: 2})
	ca, err := client.Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := client.Dial(addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	src, err := ca.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SetValueBreakpoint("q", 50, dbg.BreakAny); err != nil {
		t.Fatal(err)
	}
	if _, err := src.RunUntilPaused(1 << 14); err != nil {
		t.Fatal(err)
	}
	if err := src.Step(25); err != nil {
		t.Fatal(err)
	}
	// Re-arm a breakpoint ahead of the counter *before* exporting: the
	// imported session must carry it still armed and un-fired.
	if err := src.SetValueBreakpoint("q", 200, dbg.BreakAny); err != nil {
		t.Fatal(err)
	}
	wantCnt, err := src.Peek("cnt")
	if err != nil {
		t.Fatal(err)
	}
	wantPaused, wantCycles, _, err := src.Status()
	if err != nil {
		t.Fatal(err)
	}

	blob, cyc, err := src.StateExport(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cyc != wantCycles {
		t.Fatalf("export cycle %d, want %d", cyc, wantCycles)
	}
	if len(blob) == 0 {
		t.Fatal("empty export blob")
	}

	dst, err := cb.AttachWithState(context.Background(), "counter", blob)
	if err != nil {
		t.Fatal(err)
	}
	gotCnt, err := dst.Peek("cnt")
	if err != nil {
		t.Fatal(err)
	}
	if gotCnt != wantCnt {
		t.Fatalf("imported cnt = %d, want %d", gotCnt, wantCnt)
	}
	gotPaused, gotCycles, _, err := dst.Status()
	if err != nil {
		t.Fatal(err)
	}
	if gotPaused != wantPaused || gotCycles != wantCycles {
		t.Fatalf("imported (paused,cycles) = (%v,%d), want (%v,%d)",
			gotPaused, gotCycles, wantPaused, wantCycles)
	}

	// The armed breakpoint traveled: resumed side by side, the source
	// and the imported session pause at q==200 in lockstep — same
	// register value, same cycle count.
	for _, s := range []*client.Session{src, dst} {
		if err := s.Resume(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunUntilPaused(1 << 14); err != nil {
			t.Fatalf("armed breakpoint lost in transit: %v", err)
		}
	}
	srcCnt, err := src.Peek("cnt")
	if err != nil {
		t.Fatal(err)
	}
	dstCnt, err := dst.Peek("cnt")
	if err != nil {
		t.Fatal(err)
	}
	_, srcCyc, _, err := src.Status()
	if err != nil {
		t.Fatal(err)
	}
	_, dstCyc, _, err := dst.Status()
	if err != nil {
		t.Fatal(err)
	}
	if srcCnt != dstCnt || srcCyc != dstCyc {
		t.Fatalf("post-failover divergence: src (cnt=%d, cyc=%d), dst (cnt=%d, cyc=%d)",
			srcCnt, srcCyc, dstCnt, dstCyc)
	}

	// History traveled too: seek back to a cycle recorded before the
	// export, on the importing daemon.
	if wantCycles < 10 {
		t.Fatalf("test design ran only %d cycles", wantCycles)
	}
	if _, err := dst.HistSeek(wantCycles - 10); err != nil {
		t.Fatalf("seek into pre-export history: %v", err)
	}
	got, err := dst.Cycles()
	if err != nil {
		t.Fatal(err)
	}
	if got != wantCycles-10 {
		t.Fatalf("seek landed at cycle %d, want %d", got, wantCycles-10)
	}

	// Export is v3-only: a v2 connection is told the op does not exist.
	c2, err := client.DialOptions(addrA, client.Options{ProtocolVersion: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	s2, err := c2.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.StateExport(context.Background()); !wire.IsCode(err, wire.CodeUnknownOp) {
		t.Fatalf("v2 StateExport error = %v, want CodeUnknownOp", err)
	}
	if _, err := c2.AttachWithState(context.Background(), "counter", blob); !wire.IsCode(err, wire.CodeUnknownOp) {
		t.Fatalf("v2 AttachWithState error = %v, want CodeUnknownOp", err)
	}

	// Corrupt blobs are refused, not panicked on.
	if _, err := cb.AttachWithState(context.Background(), "counter", []byte("garbage")); !wire.IsCode(err, wire.CodeBadRequest) {
		t.Fatalf("garbage import error = %v, want CodeBadRequest", err)
	}
}
