package server_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"zoomie/internal/client"
	"zoomie/internal/dberr"
	"zoomie/internal/faults"
	"zoomie/internal/server"
	"zoomie/internal/wire"
)

// TestRemoteHistorySeekRewind drives the full time-travel surface over
// the wire: seek lands bit-identical on a recorded cycle, rewind is
// relative, savestates round-trip, and the rendered status/timeline
// lines come back verbatim from the shared facade renderers.
func TestRemoteHistorySeekRewind(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}

	if err := sess.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Step(40); err != nil {
		t.Fatal(err)
	}
	markCycle, err := sess.Cycles()
	if err != nil {
		t.Fatal(err)
	}
	markCnt, err := sess.Peek("cnt")
	if err != nil {
		t.Fatal(err)
	}
	if regs, mems, cyc, err := sess.HistSaveState("mark"); err != nil || regs == 0 || cyc != markCycle {
		t.Fatalf("savestate regs=%d mems=%d cycle=%d err=%v, want regs>0 cycle=%d",
			regs, mems, cyc, err, markCycle)
	}

	if err := sess.Step(40); err != nil {
		t.Fatal(err)
	}

	// Seek back to the marked cycle: the design must hold the exact
	// recorded register value at exactly that cycle.
	tl, err := sess.HistSeek(markCycle)
	if err != nil {
		t.Fatalf("seek: %v", err)
	}
	if cyc, _ := sess.Cycles(); cyc != markCycle {
		t.Fatalf("after seek cycles=%d, want %d", cyc, markCycle)
	}
	if v, _ := sess.Peek("cnt"); v != markCnt {
		t.Fatalf("after seek cnt=%d, want %d", v, markCnt)
	}

	// Rewind is relative to the cursor.
	cyc, tl2, err := sess.HistRewind(10)
	if err != nil {
		t.Fatalf("rewind: %v", err)
	}
	if cyc != markCycle-10 {
		t.Fatalf("rewind landed at %d, want %d", cyc, markCycle-10)
	}
	if got, _ := sess.Cycles(); got != cyc {
		t.Fatalf("cycles=%d after rewind reported %d", got, cyc)
	}
	_ = tl
	_ = tl2

	// Loading the savestate restores registers; the cycle counter stays
	// monotonic (it never goes backwards on a load).
	if _, err := sess.HistLoadState("mark"); err != nil {
		t.Fatalf("loadstate: %v", err)
	}
	if v, _ := sess.Peek("cnt"); v != markCnt {
		t.Fatalf("after loadstate cnt=%d, want %d", v, markCnt)
	}
	if _, err := sess.HistLoadState("nope"); err == nil {
		t.Fatal("loadstate of unknown name succeeded")
	}

	lines, err := sess.HistoryStatusLines()
	if err != nil || len(lines) < 3 {
		t.Fatalf("status lines = %v (err %v), want >= 3 lines", lines, err)
	}
	tls, err := sess.TimelineLines()
	if err != nil || len(tls) == 0 {
		t.Fatalf("timeline lines = %v (err %v)", tls, err)
	}
}

// TestRemoteHistoryHorizonTyped pins that a seek outside recorded
// history fails with the dberr.ErrHistoryHorizon sentinel through the
// wire's typed-error mapping, in both directions (future and evicted).
func TestRemoteHistoryHorizonTyped(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Step(10); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.HistSeek(1 << 40); !errors.Is(err, dberr.ErrHistoryHorizon) {
		t.Fatalf("seek past tip: %v, want ErrHistoryHorizon", err)
	}
	if _, _, err := sess.HistRewind(1 << 40); !errors.Is(err, dberr.ErrHistoryHorizon) {
		t.Fatalf("rewind past horizon: %v, want ErrHistoryHorizon", err)
	}
}

// TestMigrationPreservesHistory wedges the board under a paused session
// that holds recorded history and a named savestate, and asserts both
// survive onto the replacement board: the savestate still loads and a
// pre-failure cycle still seeks bit-identically.
func TestMigrationPreservesHistory(t *testing.T) {
	chaos := faults.Profile{Seed: 11, ReadFlip: 0.001}
	srv, addr := startServer(t, server.Config{
		PoolSize:           2,
		Chaos:              &chaos,
		ProbeInterval:      50 * time.Millisecond,
		QuarantineCooldown: time.Hour,
	})

	c, err := client.DialOptions(addr, client.Options{CallTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Step(30); err != nil {
		t.Fatal(err)
	}
	markCycle, _ := sess.Cycles()
	markCnt, _ := sess.Peek("cnt")
	if _, _, _, err := sess.HistSaveState("golden"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Step(30); err != nil {
		t.Fatal(err)
	}

	inj := srv.InjectorFor(sess.ID)
	if inj == nil {
		t.Fatal("no injector on a chaos-mode session")
	}
	inj.Wedge()

	deadline := time.After(5 * time.Second)
	for migrated := false; !migrated; {
		select {
		case e, ok := <-c.Events():
			if !ok {
				t.Fatal("event channel closed before migration")
			}
			if e.Kind == wire.EvtMigrated {
				migrated = true
			}
		case <-deadline:
			t.Fatal("no migration within deadline")
		}
	}

	// The transplanted engine still serves the pre-failure past.
	if _, err := sess.HistSeek(markCycle); err != nil {
		t.Fatalf("seek to pre-migration cycle: %v", err)
	}
	if cyc, _ := sess.Cycles(); cyc != markCycle {
		t.Fatalf("after seek cycles=%d, want %d", cyc, markCycle)
	}
	if v, _ := sess.Peek("cnt"); v != markCnt {
		t.Fatalf("after seek cnt=%d, want %d", v, markCnt)
	}
	if _, err := sess.HistLoadState("golden"); err != nil {
		t.Fatalf("savestate lost in migration: %v", err)
	}
	if v, _ := sess.Peek("cnt"); v != markCnt {
		t.Fatalf("after loadstate cnt=%d, want %d", v, markCnt)
	}
	if st := srv.Stats(); st.Migrations < 1 {
		t.Errorf("migrations=%d, want >=1", st.Migrations)
	}
}

// TestHistoryStream subscribes to the keyframe feed: as the design runs,
// [pos, cycle, bytes] rows arrive over the credit-based stream, strictly
// ascending and never re-delivered (the generation cursor only moves
// forward).
func TestHistoryStream(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.OpenStream(wire.StreamHistory, sess.ID, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Keep the clock moving so keyframes keep landing (default spacing
	// is 64 ticks); the poll op serializes with these Run commands.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				sess.Run(64)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	defer close(stop)

	var lastPos, lastCycle uint64
	seen := 0
	for seen < 6 {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		ev, ok := st.RecvCtx(ctx)
		cancel()
		if !ok {
			t.Fatalf("history stream stalled after %d keyframes", seen)
		}
		if len(ev.Names) != 3 || ev.Names[0] != "pos" || ev.Names[1] != "cycle" || ev.Names[2] != "bytes" {
			t.Fatalf("frame names = %v, want [pos cycle bytes]", ev.Names)
		}
		for _, row := range ev.Rows {
			if len(row) != 3 {
				t.Fatalf("row has %d values, want 3", len(row))
			}
			if seen > 0 && (row[0] <= lastPos || row[1] <= lastCycle) {
				t.Fatalf("keyframes not strictly ascending: pos %d after %d, cycle %d after %d",
					row[0], lastPos, row[1], lastCycle)
			}
			lastPos, lastCycle = row[0], row[1]
			seen++
		}
	}
}
