package server_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"zoomie/internal/client"
	"zoomie/internal/server"
	"zoomie/internal/wire"
)

func bitsOf(t *testing.T, line string) string {
	t.Helper()
	i := strings.Index(line, "bits=")
	if i < 0 {
		t.Fatalf("status line %q has no bits= digest", line)
	}
	rest := line[i+len("bits="):]
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	return rest
}

// TestCompileFarmTwoClients is the compile-farm contract over the wire:
// client A compiles a design; client B submitting the identical design
// gets an instant cache hit whose bitstream digest matches A's.
func TestCompileFarmTwoClients(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 2})
	a, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	tA, err := a.CompileSubmit("counter", "vti", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tA.Lines) == 0 || !strings.Contains(tA.Lines[0], "submitted") {
		t.Fatalf("first submit ack = %v, want 'submitted'", tA.Lines)
	}
	lineA, err := tA.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lineA, "done") {
		t.Fatalf("final status %q, want done", lineA)
	}

	tB, err := b.CompileSubmit("counter", "vti", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tB.Done || tB.ID != tA.ID {
		t.Fatalf("second client submit: done=%v id=%d, want terminal hit on job %d",
			tB.Done, tB.ID, tA.ID)
	}
	if !strings.Contains(tB.Lines[0], "cache hit") {
		t.Fatalf("second client ack = %q, want cache hit", tB.Lines[0])
	}
	if len(tB.Lines) < 2 || bitsOf(t, tB.Lines[1]) != bitsOf(t, lineA) {
		t.Fatalf("cache-hit digest differs: %v vs %q", tB.Lines, lineA)
	}

	lines, _, err := b.CompileStatus(0)
	if err != nil || len(lines) == 0 {
		t.Fatalf("job listing: %v, %v", lines, err)
	}

	// The recompile flow spawns its base compile as a companion job; the
	// base here is itself a cache hit of A's initial compile checkpoints.
	tR, err := b.CompileSubmit("counter", "recompile", 1)
	if err != nil {
		t.Fatal(err)
	}
	lineR, err := tR.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lineR, "recompile") || !strings.Contains(lineR, "tag=1") {
		t.Fatalf("recompile status %q", lineR)
	}

	// Progress stream on a terminal job: the late subscription still
	// delivers the terminal state as a frame.
	st, err := tR.Progress(8)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ev, ok := st.RecvCtx(ctx)
	if !ok || len(ev.Names) != 1 || ev.Names[0] != "done" {
		t.Fatalf("progress frame = %+v ok=%v, want terminal 'done'", ev, ok)
	}

	// The synchronous bit-identity oracle: warm == cold.
	cold, warm, err := a.CompileCheck("counter", 1)
	if err != nil {
		t.Fatal(err)
	}
	if cold == "" || cold != warm {
		t.Fatalf("bit identity check: cold %q warm %q", cold, warm)
	}

	// Cancelling a finished job is a polite no-op.
	reply, err := b.CompileCancel(tR.ID)
	if err != nil || !strings.Contains(reply, "already done") {
		t.Fatalf("cancel of done job: %q, %v", reply, err)
	}
}

// TestCompileOpsGatedToV3 pins the mixed-fleet behaviour: a server
// emulating protocol v2 answers compile ops exactly as a pre-farm
// daemon would — unknown op.
func TestCompileOpsGatedToV3(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 1, ProtocolCeiling: 2})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.CompileSubmit("counter", "vti", 0)
	if err == nil {
		t.Fatal("compilesubmit succeeded on a v2 connection")
	}
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeUnknownOp {
		t.Fatalf("err = %v, want %s", err, wire.CodeUnknownOp)
	}
}

// TestCompileUnknownDesign covers the design validation path.
func TestCompileUnknownDesign(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.CompileSubmit("no-such-design", "vti", 0); err == nil {
		t.Fatal("submit of unknown design succeeded")
	}
	if _, err := c.CompileSubmit("counter", "bogus-mode", 0); err == nil {
		t.Fatal("submit with unknown mode succeeded")
	}
}
