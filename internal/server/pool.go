package server

import (
	"fmt"
	"sync"
	"time"

	"zoomie"
)

// Pool hands out modeled FPGA boards to sessions, the way a lab hands out
// cards on a shelf: fixed capacity, one lease per attached design,
// reclaimed when the session closes (explicitly or by idle timeout). A
// fresh board is materialized per lease — reconfiguring a reclaimed slot
// and full reconfiguration of a physical card are the same operation in
// this model — so a re-leased slot never carries stale state.
//
// Slots can also be quarantined: a board that fails health probes is
// ejected from service instead of released, shrinking effective capacity
// until its cooldown expires — the self-healing analogue of pulling a
// wedged card, power-cycling it, and racking it again once it
// requalifies.
type Pool struct {
	mu       sync.Mutex
	capacity int
	cooldown time.Duration
	next     uint64
	inUse    map[uint64]*Lease
	// benched holds the requalification deadlines of quarantined slots;
	// expired entries return to service on the next Lease or accounting
	// call.
	benched []time.Time

	granted     int64
	denied      int64
	released    int64
	quarantines int64
}

// Lease is one board checked out of the pool.
type Lease struct {
	ID     uint64
	Board  *zoomie.Board
	Device string

	pool *Pool
	done bool
}

// NewPool creates a pool of n board slots with the default quarantine
// cooldown.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = 1
	}
	return &Pool{capacity: n, cooldown: time.Minute, inUse: make(map[uint64]*Lease)}
}

// SetCooldown adjusts how long a quarantined slot stays out of service.
func (p *Pool) SetCooldown(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d > 0 {
		p.cooldown = d
	}
}

// ErrPoolExhausted is wrapped into every denied Lease call.
var ErrPoolExhausted = fmt.Errorf("board pool exhausted")

// requalify returns expired quarantine slots to service. Callers hold mu.
func (p *Pool) requalify() {
	now := time.Now()
	kept := p.benched[:0]
	for _, t := range p.benched {
		if now.Before(t) {
			kept = append(kept, t)
		}
	}
	p.benched = kept
}

// Lease checks a board for the given device out of the pool.
func (p *Pool) Lease(dev *zoomie.Device) (*Lease, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requalify()
	if len(p.inUse)+len(p.benched) >= p.capacity {
		p.denied++
		return nil, fmt.Errorf("%w: %d/%d boards leased, %d quarantined",
			ErrPoolExhausted, len(p.inUse), p.capacity, len(p.benched))
	}
	p.next++
	l := &Lease{ID: p.next, Board: zoomie.NewBoard(dev), Device: dev.Name, pool: p}
	p.inUse[l.ID] = l
	p.granted++
	return l, nil
}

// Release returns the board slot to the pool. Safe to call twice, and a
// no-op on a quarantined lease (the slot is benched, not free).
func (l *Lease) Release() {
	if l == nil {
		return
	}
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	delete(l.pool.inUse, l.ID)
	l.pool.released++
}

// Quarantine ejects the leased board from service instead of freeing it:
// the slot stays out of capacity until the cooldown expires. A later
// Release on the same lease is a no-op.
func (l *Lease) Quarantine() {
	if l == nil {
		return
	}
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	delete(l.pool.inUse, l.ID)
	l.pool.quarantines++
	l.pool.benched = append(l.pool.benched, time.Now().Add(l.pool.cooldown))
}

// Capacity returns the number of board slots.
func (p *Pool) Capacity() int { return p.capacity }

// InUse returns the number of leased boards.
func (p *Pool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.inUse)
}

// Quarantined returns the number of slots currently out of service.
func (p *Pool) Quarantined() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requalify()
	return len(p.benched)
}

// Counters returns (granted, denied, released) lease counts.
func (p *Pool) Counters() (granted, denied, released int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.granted, p.denied, p.released
}

// QuarantineCount returns the lifetime number of quarantined boards.
func (p *Pool) QuarantineCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quarantines
}
