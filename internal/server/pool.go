package server

import (
	"fmt"
	"sync"

	"zoomie"
)

// Pool hands out modeled FPGA boards to sessions, the way a lab hands out
// cards on a shelf: fixed capacity, one lease per attached design,
// reclaimed when the session closes (explicitly or by idle timeout). A
// fresh board is materialized per lease — reconfiguring a reclaimed slot
// and full reconfiguration of a physical card are the same operation in
// this model — so a re-leased slot never carries stale state.
type Pool struct {
	mu       sync.Mutex
	capacity int
	next     uint64
	inUse    map[uint64]*Lease

	granted  int64
	denied   int64
	released int64
}

// Lease is one board checked out of the pool.
type Lease struct {
	ID     uint64
	Board  *zoomie.Board
	Device string

	pool *Pool
	done bool
}

// NewPool creates a pool of n board slots.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = 1
	}
	return &Pool{capacity: n, inUse: make(map[uint64]*Lease)}
}

// ErrPoolExhausted is wrapped into every denied Lease call.
var ErrPoolExhausted = fmt.Errorf("board pool exhausted")

// Lease checks a board for the given device out of the pool.
func (p *Pool) Lease(dev *zoomie.Device) (*Lease, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.inUse) >= p.capacity {
		p.denied++
		return nil, fmt.Errorf("%w: %d/%d boards leased", ErrPoolExhausted, len(p.inUse), p.capacity)
	}
	p.next++
	l := &Lease{ID: p.next, Board: zoomie.NewBoard(dev), Device: dev.Name, pool: p}
	p.inUse[l.ID] = l
	p.granted++
	return l, nil
}

// Release returns the board slot to the pool. Safe to call twice.
func (l *Lease) Release() {
	if l == nil {
		return
	}
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	delete(l.pool.inUse, l.ID)
	l.pool.released++
}

// Capacity returns the number of board slots.
func (p *Pool) Capacity() int { return p.capacity }

// InUse returns the number of leased boards.
func (p *Pool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.inUse)
}

// Counters returns (granted, denied, released) lease counts.
func (p *Pool) Counters() (granted, denied, released int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.granted, p.denied, p.released
}
