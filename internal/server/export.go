package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"zoomie"
	"zoomie/internal/history"
	"zoomie/internal/wire"
)

// Session state export/import: the wire transport behind cross-daemon
// failover. OpStateExport (session-scoped, handled on the actor) returns
// the session's full-scope snapshot plus its encoded history engine as a
// base64 blob chunked into Response.Lines; OpStateImport (connection-
// level, like attach) builds a brand-new session from those chunks —
// lease a board, adopt the history, restore the snapshot — exactly the
// in-daemon migration path, lifted across the wire.

// exportBlob is the JSON envelope inside an export blob. The snapshot is
// the full-scope DebugSnapshot (user design + Debug Controller
// registers); History is the history.Encode blob, nil when the session
// records no history.
type exportBlob struct {
	Snapshot *zoomie.DebugSnapshot `json:"snapshot"`
	History  []byte                `json:"history,omitempty"`
}

// exportChunk bounds one Lines entry. The whole response must still fit
// a wire frame (8 MiB), which bounds total exportable state; the modeled
// designs sit far below it.
const exportChunk = 256 << 10

// maxExportBytes refuses exports that could not travel in one frame,
// leaving headroom for the response envelope.
const maxExportBytes = 6 << 20

func encodeExport(snap *zoomie.DebugSnapshot, hist []byte) ([]string, error) {
	data, err := json.Marshal(exportBlob{Snapshot: snap, History: hist})
	if err != nil {
		return nil, err
	}
	b64 := base64.StdEncoding.EncodeToString(data)
	if len(b64) > maxExportBytes {
		return nil, fmt.Errorf("session state too large to export (%d bytes encoded, max %d)", len(b64), maxExportBytes)
	}
	var lines []string
	for len(b64) > exportChunk {
		lines = append(lines, b64[:exportChunk])
		b64 = b64[exportChunk:]
	}
	return append(lines, b64), nil
}

func decodeExport(chunks []string) (*exportBlob, error) {
	data, err := base64.StdEncoding.DecodeString(strings.Join(chunks, ""))
	if err != nil {
		return nil, fmt.Errorf("state blob is not base64: %v", err)
	}
	var blob exportBlob
	if err := json.Unmarshal(data, &blob); err != nil {
		return nil, fmt.Errorf("state blob does not parse: %v", err)
	}
	if blob.Snapshot == nil {
		return nil, fmt.Errorf("state blob carries no snapshot")
	}
	return &blob, nil
}

// importAttach is attach-with-state: build a fresh session for the
// design, transplant the decoded history engine, restore the exported
// snapshot (full scope — breakpoints and pause state land armed), then
// register and answer exactly like a plain attach. Runs on the calling
// connection's read loop, like attach.
func (s *Server) importAttach(c *conn, req *wire.Request) *wire.Response {
	resp := &wire.Response{ID: req.ID}
	if s.isClosed() {
		resp.Err = wire.Errf(wire.CodeShutdown, "server shutting down")
		return resp
	}
	name := req.Design
	if _, ok := Catalog()[name]; !ok {
		resp.Err = wire.Errf(wire.CodeUnknownDesign, "unknown design %q (have: %v)", name, CatalogNames())
		return resp
	}
	if !s.allowed(name) {
		resp.Err = wire.Errf(wire.CodeForbidden, "design %q not served (allowlist: %v)", name, s.cfg.Allow)
		return resp
	}
	blob, err := decodeExport(req.Signals)
	if err != nil {
		resp.Err = wire.Errf(wire.CodeBadRequest, "import: %v", err)
		return resp
	}
	var hist *history.Engine
	if len(blob.History) > 0 {
		if hist, err = history.Decode(blob.History); err != nil {
			resp.Err = wire.Errf(wire.CodeBadRequest, "import: %v", err)
			return resp
		}
	}
	zs, ilaMeta, inj, lease, err := s.newSessionFor(name)
	if err != nil {
		code := wire.CodeOp
		if errors.Is(err, ErrPoolExhausted) {
			code = wire.CodePoolExhausted
		}
		resp.Err = wire.Errf(code, "%s", err)
		return resp
	}
	// Adopt before restore, so the restore lands in history as host
	// writes — identical to the in-daemon migration ordering. A layout
	// mismatch forfeits history but not the import.
	if hist != nil {
		if aerr := zs.AdoptHistory(hist); aerr != nil {
			s.cfg.Logf("zoomied: import: history not transplanted: %v", aerr)
		}
	}
	if rerr := zs.Restore(blob.Snapshot); rerr != nil {
		zs.Close()
		s.retire(zs, inj)
		resp.Err = wire.Errf(wire.CodeOp, "import: snapshot restore: %v", rerr)
		return resp
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		zs.Close()
		resp.Err = wire.Errf(wire.CodeShutdown, "server shutting down")
		return resp
	}
	s.nextSID++
	sess := newSession(s.nextSID, name, zs, s)
	sess.lease = lease
	sess.ilaMeta = ilaMeta
	sess.injector.Store(inj)
	s.sessions[sess.id] = sess
	s.mu.Unlock()

	atomic.AddInt64(&s.stats.sessionsActive, 1)
	atomic.AddInt64(&s.stats.sessionsTotal, 1)
	s.wg.Add(1)
	go sess.loop()
	c.subscribe(sess.id)
	s.cfg.Logf("zoomied: session %d imported %s on board lease %d (%s)",
		sess.id, name, lease.ID, lease.Device)

	resp.Session = sess.id
	resp.Design = name
	resp.Device = lease.Device
	resp.Report = fmt.Sprintf("%s", zs.Result.Report)
	for _, w := range zs.Meta.Watches {
		resp.Watches = append(resp.Watches, w.Signal)
	}
	resp.Cycles = blob.Snapshot.Cycle
	return resp
}
