package server_test

import (
	"net"
	"testing"
	"time"

	"zoomie/internal/client"
	"zoomie/internal/fpga"
	"zoomie/internal/server"
	"zoomie/internal/wire"
)

// testDevice returns a modeled device for pool unit tests
// (zoomie.Device aliases fpga.Device, so the types line up).
func testDevice() *fpga.Device { return fpga.NewU200() }

// startServer spins up a zoomied instance on a loopback port and returns
// its address plus the server handle.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func TestAttachDebugDetach(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 2})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sess, err := c.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Device == "" || sess.Report == "" || len(sess.Watches) == 0 {
		t.Fatalf("attach metadata incomplete: %+v", sess)
	}

	// The full debug loop over the wire: breakpoint, until, peek, step,
	// poke, snapshot, restore.
	if err := sess.SetValueBreakpoint("q", 50, 1 /* BreakAny */); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunUntilPaused(1 << 14); err != nil {
		t.Fatal(err)
	}
	v, err := sess.Peek("cnt")
	if err != nil {
		t.Fatal(err)
	}
	if v != 50 {
		t.Fatalf("breakpoint paused at cnt=%d, want 50", v)
	}
	if err := sess.Step(3); err != nil {
		t.Fatal(err)
	}
	if v, _ = sess.Peek("cnt"); v != 53 {
		t.Fatalf("after 3 steps cnt=%d, want 53", v)
	}
	wantCycle, err := sess.Cycles()
	if err != nil {
		t.Fatal(err)
	}
	regs, _, cycle, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if regs == 0 || cycle != wantCycle {
		t.Fatalf("snapshot shape regs=%d cycle=%d, want cycle %d", regs, cycle, wantCycle)
	}
	if err := sess.Step(10); err != nil {
		t.Fatal(err)
	}
	if err := sess.Restore(); err != nil {
		t.Fatal(err)
	}
	if v, _ = sess.Peek("cnt"); v != 53 {
		t.Fatalf("restore rewound to cnt=%d, want 53", v)
	}
	if err := sess.Poke("cnt", 1000); err != nil {
		t.Fatal(err)
	}
	if v, _ = sess.Peek("cnt"); v != 1000 {
		t.Fatalf("poke stuck at cnt=%d, want 1000", v)
	}
	lines, err := sess.Inspect("dut")
	if err != nil || len(lines) == 0 {
		t.Fatalf("inspect: %d lines, err %v", len(lines), err)
	}
	tr, err := sess.TraceSteps([]string{"cnt"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rows) != 5 { // initial sample + 4 steps
		t.Fatalf("trace rows %d, want 5", len(tr.Rows))
	}
	paused, cycles, elapsed, err := sess.Status()
	if err != nil || !paused || cycles == 0 || elapsed <= 0 {
		t.Fatalf("status paused=%v cycles=%d elapsed=%v err=%v", paused, cycles, elapsed, err)
	}
	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
	// The session is gone: further commands answer no_session.
	if _, err := sess.Peek("cnt"); !wire.IsCode(err, wire.CodeNoSession) {
		t.Fatalf("peek after detach: %v, want no_session", err)
	}
}

func TestBreakpointEventDelivery(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetValueBreakpoint("q", 25, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunUntilPaused(1 << 14); err != nil {
		t.Fatal(err)
	}
	// The attach auto-subscribed this connection: the pause must arrive
	// as an asynchronous event, no polling involved.
	select {
	case e := <-c.Events():
		if e.Kind != wire.EvtPaused || e.Session != sess.ID {
			t.Fatalf("unexpected event %+v", e)
		}
		if e.Cycles != 25 {
			t.Fatalf("pause event at cycle %d, want 25", e.Cycles)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no breakpoint event within 5s")
	}
}

// TestTwoClientsIndependentAndIdleReclaim is the acceptance scenario:
// two clients on two designs debug independently; killing one client
// mid-run leaks nothing — the idle timeout auto-detaches its session and
// the board is re-leased to a third client.
func TestTwoClientsIndependentAndIdleReclaim(t *testing.T) {
	const idle = 300 * time.Millisecond
	srv, addr := startServer(t, server.Config{PoolSize: 2, IdleTimeout: idle})

	// Client A: counter. Client B: the cohort accelerator.
	ca, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	sa, err := ca.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := cb.Attach("cohort")
	if err != nil {
		t.Fatal(err)
	}

	// Independent breakpoint/step/peek: A breakpoints its counter...
	if err := sa.SetValueBreakpoint("q", 40, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.RunUntilPaused(1 << 14); err != nil {
		t.Fatal(err)
	}
	if v, _ := sa.Peek("cnt"); v != 40 {
		t.Fatalf("A paused at cnt=%d, want 40", v)
	}
	// ...while B pauses, steps and inspects the accelerator.
	if err := sb.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := sb.Step(5); err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Peek("datapath.result_cnt"); err != nil {
		t.Fatal(err)
	}
	// A's pause state must be untouched by B's activity.
	if paused, _ := sa.Paused(); !paused {
		t.Fatal("A's breakpoint pause was disturbed by B")
	}
	if err := sa.Step(1); err != nil {
		t.Fatal(err)
	}
	if v, _ := sa.Peek("cnt"); v != 41 {
		t.Fatalf("A stepped to cnt=%d, want 41", v)
	}

	// Pool is full: a third client cannot attach.
	cc, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if _, err := cc.Attach("counter"); !wire.IsCode(err, wire.CodePoolExhausted) {
		t.Fatalf("third attach with full pool: %v, want pool_exhausted", err)
	}

	// Keep A warm so only B goes idle.
	stop := make(chan struct{})
	kept := make(chan struct{})
	go func() {
		defer close(kept)
		for {
			select {
			case <-stop:
				return
			case <-time.After(idle / 4):
				sa.Peek("cnt")
			}
		}
	}()
	defer func() { close(stop); <-kept }()

	// Kill B mid-run: resume the design, then drop the connection
	// without detaching.
	if err := sb.Resume(); err != nil {
		t.Fatal(err)
	}
	cb.Close()

	// B's session must be reaped after the idle timeout and its board
	// re-leased to the third client.
	deadline := time.Now().Add(30 * time.Second)
	var sc *client.Session
	for {
		sc, err = cc.Attach("counter")
		if err == nil {
			break
		}
		if !wire.IsCode(err, wire.CodePoolExhausted) {
			t.Fatalf("third attach: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("board was never reclaimed from the dead client")
		}
		time.Sleep(idle / 2)
	}
	if err := sc.Step(2); err != nil {
		t.Fatalf("re-leased board is not debuggable: %v", err)
	}
	// A survived throughout.
	if v, _ := sa.Peek("cnt"); v != 41 {
		t.Fatalf("A's state changed during reclaim: cnt=%d, want 41", v)
	}
	st := srv.Stats()
	if st.IdleReaped < 1 {
		t.Errorf("idle_reaped=%d, want >=1", st.IdleReaped)
	}
	if st.Interleaved != 0 {
		t.Errorf("interleaved=%d, want 0", st.Interleaved)
	}
}

func TestAttachUnknownAndAllowlist(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 1, Allow: []string{"counter"}})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Attach("nonesuch"); !wire.IsCode(err, wire.CodeUnknownDesign) {
		t.Fatalf("unknown design: %v", err)
	}
	if _, err := c.Attach("netstack"); !wire.IsCode(err, wire.CodeForbidden) {
		t.Fatalf("allowlisted design: %v", err)
	}
	if _, err := c.Attach("counter"); err != nil {
		t.Fatalf("allowed design: %v", err)
	}
}

func TestVersionHandshake(t *testing.T) {
	_, addr := startServer(t, server.Config{PoolSize: 1})

	// A client newer than the server negotiates down to the server's
	// version instead of being refused.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := wire.WriteMessage(nc, wire.Req(&wire.Request{ID: 1, Op: wire.OpHello, Version: 999})); err != nil {
		t.Fatal(err)
	}
	m, _, err := wire.ReadMessage(nc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Resp == nil || m.Resp.Err != nil || m.Resp.Version != wire.Version {
		t.Fatalf("newer client should negotiate down to %d, got %+v", wire.Version, m)
	}

	// A client older than MinVersion is refused with CodeVersion.
	nc2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	if _, err := wire.WriteMessage(nc2, wire.Req(&wire.Request{ID: 1, Op: wire.OpHello, Version: wire.MinVersion - 1})); err != nil {
		t.Fatal(err)
	}
	m2, _, err := wire.ReadMessage(nc2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Resp == nil || m2.Resp.Err == nil || m2.Resp.Err.Code != wire.CodeVersion {
		t.Fatalf("ancient client answered with %+v", m2)
	}
}

func TestServerStatsCounters(t *testing.T) {
	srv, addr := startServer(t, server.Config{PoolSize: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sess.Peek("cnt"); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SessionsActive != 1 || st.SessionsTotal != 1 {
		t.Errorf("sessions active=%d total=%d, want 1/1", st.SessionsActive, st.SessionsTotal)
	}
	if st.CommandsServed < 6 {
		t.Errorf("commands_served=%d, want >=6", st.CommandsServed)
	}
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Errorf("byte counters idle: in=%d out=%d", st.BytesIn, st.BytesOut)
	}
	if st.PoolCapacity != 1 || st.PoolInUse != 1 {
		t.Errorf("pool %d/%d, want 1/1", st.PoolInUse, st.PoolCapacity)
	}
	var latTotal int64
	for _, n := range st.LatencyBuckets {
		latTotal += n
	}
	if latTotal == 0 {
		t.Error("latency histogram recorded nothing")
	}
	// Graceful shutdown pauses the design and releases the board.
	srv.Shutdown()
	if got := srv.Stats().PoolInUse; got != 0 {
		t.Errorf("pool in use after shutdown: %d", got)
	}
}

func TestPoolLeaseAccounting(t *testing.T) {
	p := server.NewPool(2)
	dev := testDevice()
	l1, err := p.Lease(dev)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := p.Lease(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Lease(dev); err == nil {
		t.Fatal("third lease from a 2-pool succeeded")
	}
	l1.Release()
	l1.Release() // idempotent
	if p.InUse() != 1 {
		t.Fatalf("in use %d, want 1", p.InUse())
	}
	if _, err := p.Lease(dev); err != nil {
		t.Fatalf("re-lease after release: %v", err)
	}
	l2.Release()
	granted, denied, released := p.Counters()
	if granted != 3 || denied != 1 || released != 2 {
		t.Fatalf("counters granted=%d denied=%d released=%d", granted, denied, released)
	}
}
