package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"zoomie/internal/farm"
	"zoomie/internal/vti"
	"zoomie/internal/wire"
)

// TestDisconnectCancelsHeldCompile is the disconnect half of end-to-end
// cancellation: a client that dies mid-place releases its farm
// references, and a job with no other holder stops at the next phase
// gate. The farm's phase hook holds the compile at place entry so the
// disconnect deterministically lands while the job is running.
func TestDisconnectCancelsHeldCompile(t *testing.T) {
	srv := New(Config{})
	gate := make(chan struct{})
	placed := make(chan struct{})
	var once sync.Once
	srv.farm = farm.New(farm.Config{PhaseHook: func(_ uint64, phase string) {
		if phase == vti.PhasePlace {
			once.Do(func() { close(placed) })
			<-gate
		}
	}})

	p1, p2 := net.Pipe()
	defer p2.Close()
	c := newConn(srv, p1)
	c.version = wire.Version

	resp := srv.handleCompile(c, &wire.Request{ID: 1, Op: wire.OpCompileSubmit, Design: "counter"})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	job, ok := srv.farm.Job(resp.Value)
	if !ok {
		t.Fatalf("no job %d", resp.Value)
	}
	<-placed

	// The connection dies mid-place; markDead releases its job refs.
	c.markDead()
	close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := job.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("job err = %v, want context.Canceled", err)
	}
	if st := job.Status().State; st != farm.StateCancelled {
		t.Errorf("state = %s, want cancelled", st)
	}
}

// TestCancelOpRequiresReference: a connection that attached via cache
// hit holds no reference and cannot cancel someone else's running job.
func TestCancelOpRequiresReference(t *testing.T) {
	srv := New(Config{})
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	srv.farm = farm.New(farm.Config{PhaseHook: func(_ uint64, phase string) {
		if phase == vti.PhaseSynth {
			once.Do(func() { close(started) })
			<-gate
		}
	}})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()

	p1, _ := net.Pipe()
	holder := newConn(srv, p1)
	holder.version = wire.Version
	p3, _ := net.Pipe()
	bystander := newConn(srv, p3)
	bystander.version = wire.Version

	resp := srv.handleCompile(holder, &wire.Request{ID: 1, Op: wire.OpCompileSubmit, Design: "counter"})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	<-started

	deny := srv.handleCompile(bystander, &wire.Request{ID: 2, Op: wire.OpCompileCancel, Value: resp.Value})
	if deny.Err == nil || deny.Err.Code != wire.CodeForbidden {
		t.Fatalf("bystander cancel = %+v, want %s", deny.Err, wire.CodeForbidden)
	}

	allow := srv.handleCompile(holder, &wire.Request{ID: 3, Op: wire.OpCompileCancel, Value: resp.Value})
	if allow.Err != nil {
		t.Fatalf("holder cancel: %v", allow.Err)
	}
	openGate() // release the held phase; the next gate observes the cancel
	job, _ := srv.farm.Job(resp.Value)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := job.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("job err = %v, want context.Canceled", err)
	}
}
