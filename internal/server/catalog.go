package server

import (
	"fmt"
	"sort"
	"sync"

	"zoomie"
	"zoomie/internal/workloads"
)

// extraMu guards the process-wide catalog extensions registered by
// Register. Tools that serve generated designs (zcheck) add entries
// here before starting an in-process server.
var (
	extraMu sync.Mutex
	extra   = map[string]Entry{}
)

// Register adds (or replaces) a catalog entry at runtime so servers in
// this process can attach sessions to designs that are not part of the
// bundled catalog — the hook the checking harness uses to serve
// generated designs through real zoomied sessions.
func Register(name string, e Entry) {
	extraMu.Lock()
	defer extraMu.Unlock()
	extra[name] = e
}

// Unregister removes a runtime-registered entry.
func Unregister(name string) {
	extraMu.Lock()
	defer extraMu.Unlock()
	delete(extra, name)
}

// Entry is one debuggable design in the server's catalog: how to build
// it, how to debug it, and how to bring it to life after the clock
// starts (initial input pokes).
type Entry struct {
	// Describe is a one-line summary for listings and logs.
	Describe string
	// Build returns the design and its debug configuration.
	Build func() (*zoomie.Design, zoomie.DebugConfig)
	// Init runs once after the session starts (e.g. enable pokes).
	Init func(*zoomie.Session) error
}

// Catalog returns the bundled designs, keyed by the names clients pass
// to attach. Variant designs (the TLB bug, the hanging program) are
// separate entries so an allowlist can expose exactly one of them.
func Catalog() map[string]Entry {
	m := map[string]Entry{
		"counter": {
			Describe: "16-bit counter (quickstart design)",
			Build: func() (*zoomie.Design, zoomie.DebugConfig) {
				m := zoomie.NewModule("counter")
				q := m.Output("q", 16)
				cnt := m.Reg("cnt", 16, "clk", 0)
				m.SetNext(cnt, zoomie.Add(zoomie.S(cnt), zoomie.C(1, 16)))
				m.Connect(q, zoomie.S(cnt))
				return zoomie.NewDesign("counter", m),
					zoomie.DebugConfig{Watches: []string{"q"}}
			},
		},
		"cohort": {
			Describe: "Cohort-like accelerator (§5.5), correct TLB",
			Build: func() (*zoomie.Design, zoomie.DebugConfig) {
				return workloads.CohortAccel(false),
					zoomie.DebugConfig{Watches: []string{"result_count", "done"}}
			},
			Init: cohortInit,
		},
		"cohort-bug": {
			Describe: "Cohort-like accelerator with the TLB ack bug (§5.5)",
			Build: func() (*zoomie.Design, zoomie.DebugConfig) {
				return workloads.CohortAccel(true),
					zoomie.DebugConfig{Watches: []string{"result_count", "done"}}
			},
			Init: cohortInit,
		},
		"exception": {
			Describe: "Ariane-like SoC running the well-behaved trap program (§5.6)",
			Build: func() (*zoomie.Design, zoomie.DebugConfig) {
				return exceptionBuild(workloads.WellBehavedExceptionProgram())
			},
			Init: enableInit,
		},
		"exception-hang": {
			Describe: "Ariane-like SoC running the hanging trap program (§5.6)",
			Build: func() (*zoomie.Design, zoomie.DebugConfig) {
				return exceptionBuild(workloads.HangingExceptionProgram())
			},
			Init: enableInit,
		},
		"netstack": {
			Describe: "Beehive-like 250 MHz network stack (§5.7)",
			Build: func() (*zoomie.Design, zoomie.DebugConfig) {
				return workloads.NetStack(), zoomie.DebugConfig{
					UserClock:   workloads.NetClk,
					Watches:     []string{"pkt_count", "dropped_frames"},
					PauseInputs: []string{"dbg_paused"},
					ExtraClocks: []zoomie.ClockSpec{{Name: workloads.MacClk, Period: 1}},
					Compile:     zoomie.CompileOptions{TargetMHz: 250},
				}
			},
			Init: func(s *zoomie.Session) error {
				if err := s.PokeInput("en", 1); err != nil {
					return err
				}
				return s.PokeInput("engine_ready", 1)
			},
		},
	}
	extraMu.Lock()
	for n, e := range extra {
		m[n] = e
	}
	extraMu.Unlock()
	return m
}

func cohortInit(s *zoomie.Session) error {
	if err := s.PokeInput("en", 1); err != nil {
		return err
	}
	return s.PokeInput("n_items", 10)
}

func enableInit(s *zoomie.Session) error { return s.PokeInput("en", 1) }

func exceptionBuild(prog []uint16) (*zoomie.Design, zoomie.DebugConfig) {
	return workloads.ExceptionSoC(prog),
		zoomie.DebugConfig{Watches: []string{"mcause63", "mie", "mpie", "trap"}}
}

// CatalogNames returns the sorted design names.
func CatalogNames() []string {
	var names []string
	for n := range Catalog() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewCatalogSession builds, compiles and starts one catalog design. The
// optional leaseBoard hook places the session on a pooled board; cmd/
// zoomie's in-process mode passes nil and gets a private board.
func NewCatalogSession(name string, leaseBoard func(*zoomie.Device) (*zoomie.Board, error)) (*zoomie.Session, error) {
	return NewCatalogSessionWith(name, func(cfg *zoomie.DebugConfig) {
		cfg.LeaseBoard = leaseBoard
	})
}

// NewCatalogSessionWith builds a catalog design with full control over
// its DebugConfig — the hook the server uses to thread board leases and
// per-session fault injectors into the entry's own configuration.
func NewCatalogSessionWith(name string, mod func(*zoomie.DebugConfig)) (*zoomie.Session, error) {
	entry, ok := Catalog()[name]
	if !ok {
		return nil, fmt.Errorf("unknown design %q (have: %v)", name, CatalogNames())
	}
	d, cfg := entry.Build()
	if mod != nil {
		mod(&cfg)
	}
	sess, err := zoomie.Debug(d, cfg)
	if err != nil {
		return nil, err
	}
	if entry.Init != nil {
		if err := entry.Init(sess); err != nil {
			sess.Close()
			return nil, err
		}
	}
	return sess, nil
}
