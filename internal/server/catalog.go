package server

import (
	"fmt"
	"sort"
	"sync"

	"zoomie"
	"zoomie/internal/workloads"
)

// extraMu guards the process-wide catalog extensions registered by
// Register. Tools that serve generated designs (zcheck) add entries
// here before starting an in-process server.
var (
	extraMu sync.Mutex
	extra   = map[string]Entry{}
)

// Register adds (or replaces) a catalog entry at runtime so servers in
// this process can attach sessions to designs that are not part of the
// bundled catalog — the hook the checking harness uses to serve
// generated designs through real zoomied sessions.
func Register(name string, e Entry) {
	extraMu.Lock()
	defer extraMu.Unlock()
	extra[name] = e
}

// Unregister removes a runtime-registered entry.
func Unregister(name string) {
	extraMu.Lock()
	defer extraMu.Unlock()
	delete(extra, name)
}

// Entry is one debuggable design in the server's catalog: how to build
// it, how to debug it, and how to bring it to life after the clock
// starts (initial input pokes).
type Entry struct {
	// Describe is a one-line summary for listings and logs.
	Describe string
	// Build returns the design and its debug configuration.
	Build func() (*zoomie.Design, zoomie.DebugConfig)
	// Init runs once after the session starts (e.g. enable pokes).
	Init func(*zoomie.Session) error
	// ILA, when set, wraps the built design with a vendor-style ILA
	// before debug instrumentation. Sessions attached to such entries can
	// serve "ila" streams: completed capture windows are uploaded,
	// re-armed, and pushed to subscribed v3 clients.
	ILA *zoomie.ILAConfig
}

// Catalog returns the bundled designs, keyed by the names clients pass
// to attach. Variant designs (the TLB bug, the hanging program) are
// separate entries so an allowlist can expose exactly one of them.
func Catalog() map[string]Entry {
	m := map[string]Entry{
		"counter": {
			Describe: "16-bit counter (quickstart design)",
			Build: func() (*zoomie.Design, zoomie.DebugConfig) {
				m := zoomie.NewModule("counter")
				q := m.Output("q", 16)
				cnt := m.Reg("cnt", 16, "clk", 0)
				m.SetNext(cnt, zoomie.Add(zoomie.S(cnt), zoomie.C(1, 16)))
				m.Connect(q, zoomie.S(cnt))
				return zoomie.NewDesign("counter", m),
					zoomie.DebugConfig{Watches: []string{"q"}}
			},
		},
		"ila-counter": {
			Describe: "16-bit counter with a free-running low-nibble ILA (streaming demo)",
			Build: func() (*zoomie.Design, zoomie.DebugConfig) {
				m := zoomie.NewModule("counter")
				q := m.Output("q", 16)
				ql := m.Output("qlow", 4)
				cnt := m.Reg("cnt", 16, "clk", 0)
				m.SetNext(cnt, zoomie.Add(zoomie.S(cnt), zoomie.C(1, 16)))
				m.Connect(q, zoomie.S(cnt))
				m.Connect(ql, zoomie.Slice(zoomie.S(cnt), 3, 0))
				return zoomie.NewDesign("counter", m),
					zoomie.DebugConfig{Watches: []string{"q"}}
			},
			// The low nibble wraps every 16 cycles, so the trigger refires
			// immediately after each re-arm: a continuous window stream.
			ILA: &zoomie.ILAConfig{
				Probes: []string{"q", "qlow"}, Depth: 16,
				TriggerSignal: "qlow", TriggerValue: 0,
			},
		},
		"cohort": {
			Describe: "Cohort-like accelerator (§5.5), correct TLB",
			Build: func() (*zoomie.Design, zoomie.DebugConfig) {
				return workloads.CohortAccel(false),
					zoomie.DebugConfig{Watches: []string{"result_count", "done"}}
			},
			Init: cohortInit,
		},
		"cohort-bug": {
			Describe: "Cohort-like accelerator with the TLB ack bug (§5.5)",
			Build: func() (*zoomie.Design, zoomie.DebugConfig) {
				return workloads.CohortAccel(true),
					zoomie.DebugConfig{Watches: []string{"result_count", "done"}}
			},
			Init: cohortInit,
		},
		"exception": {
			Describe: "Ariane-like SoC running the well-behaved trap program (§5.6)",
			Build: func() (*zoomie.Design, zoomie.DebugConfig) {
				return exceptionBuild(workloads.WellBehavedExceptionProgram())
			},
			Init: enableInit,
		},
		"exception-hang": {
			Describe: "Ariane-like SoC running the hanging trap program (§5.6)",
			Build: func() (*zoomie.Design, zoomie.DebugConfig) {
				return exceptionBuild(workloads.HangingExceptionProgram())
			},
			Init: enableInit,
		},
		"netstack": {
			Describe: "Beehive-like 250 MHz network stack (§5.7)",
			Build: func() (*zoomie.Design, zoomie.DebugConfig) {
				return workloads.NetStack(), zoomie.DebugConfig{
					UserClock:   workloads.NetClk,
					Watches:     []string{"pkt_count", "dropped_frames"},
					PauseInputs: []string{"dbg_paused"},
					ExtraClocks: []zoomie.ClockSpec{{Name: workloads.MacClk, Period: 1}},
					Compile:     zoomie.CompileOptions{TargetMHz: 250},
				}
			},
			Init: func(s *zoomie.Session) error {
				if err := s.PokeInput("en", 1); err != nil {
					return err
				}
				return s.PokeInput("engine_ready", 1)
			},
		},
	}
	extraMu.Lock()
	for n, e := range extra {
		m[n] = e
	}
	extraMu.Unlock()
	return m
}

func cohortInit(s *zoomie.Session) error {
	if err := s.PokeInput("en", 1); err != nil {
		return err
	}
	return s.PokeInput("n_items", 10)
}

func enableInit(s *zoomie.Session) error { return s.PokeInput("en", 1) }

func exceptionBuild(prog []uint16) (*zoomie.Design, zoomie.DebugConfig) {
	return workloads.ExceptionSoC(prog),
		zoomie.DebugConfig{Watches: []string{"mcause63", "mie", "mpie", "trap"}}
}

// CatalogNames returns the sorted design names.
func CatalogNames() []string {
	var names []string
	for n := range Catalog() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewCatalogSession builds, compiles and starts one catalog design. The
// optional leaseBoard hook places the session on a pooled board; cmd/
// zoomie's in-process mode passes nil and gets a private board.
func NewCatalogSession(name string, leaseBoard func(*zoomie.Device) (*zoomie.Board, error)) (*zoomie.Session, error) {
	return NewCatalogSessionWith(name, func(cfg *zoomie.DebugConfig) {
		cfg.LeaseBoard = leaseBoard
	})
}

// NewCatalogSessionWith builds a catalog design with full control over
// its DebugConfig — the hook the server uses to thread board leases and
// per-session fault injectors into the entry's own configuration.
func NewCatalogSessionWith(name string, mod func(*zoomie.DebugConfig)) (*zoomie.Session, error) {
	sess, _, err := NewCatalogSessionILA(name, mod)
	return sess, err
}

// NewCatalogSessionILA is NewCatalogSessionWith for ILA-carrying
// entries: when the entry declares an ILA, the design is wrapped before
// debug instrumentation and the capture metadata is returned so the
// session can upload and re-arm windows. Entries without an ILA return
// nil metadata.
func NewCatalogSessionILA(name string, mod func(*zoomie.DebugConfig)) (*zoomie.Session, *zoomie.ILAMeta, error) {
	entry, ok := Catalog()[name]
	if !ok {
		return nil, nil, fmt.Errorf("unknown design %q (have: %v)", name, CatalogNames())
	}
	d, cfg := entry.Build()
	var meta *zoomie.ILAMeta
	if entry.ILA != nil {
		var err error
		d, meta, err = zoomie.InstrumentILA(d, *entry.ILA)
		if err != nil {
			return nil, nil, fmt.Errorf("design %q: %w", name, err)
		}
	}
	if mod != nil {
		mod(&cfg)
	}
	sess, err := zoomie.Debug(d, cfg)
	if err != nil {
		return nil, nil, err
	}
	if entry.Init != nil {
		if err := entry.Init(sess); err != nil {
			sess.Close()
			return nil, nil, err
		}
	}
	return sess, meta, nil
}
