package server

import (
	"context"
	"errors"
	"fmt"

	"zoomie/internal/farm"
	"zoomie/internal/rtl"
	"zoomie/internal/wire"
)

// CompileSpec resolves a catalog design into a compile-farm spec. The
// spec rebuilds the design from the catalog entry on every use — the
// farm shares content, never module pointers, so a spec built here
// digests identically to one built by any other client of the same
// catalog — and leaves the partition to the farm's auto-detection.
func CompileSpec(design string) (farm.Spec, error) {
	entry, ok := Catalog()[design]
	if !ok {
		return farm.Spec{}, fmt.Errorf("unknown design %q (have: %v)", design, CatalogNames())
	}
	return farm.Spec{
		Design: design,
		Build: func() (*rtl.Design, error) {
			d, _ := entry.Build()
			return d, nil
		},
	}, nil
}

// handleCompile serves the compile-farm ops. Like attach, it runs on the
// calling connection's read loop: submits return immediately (the farm
// compiles on its own goroutines), and only the synchronous "check" mode
// occupies the loop — stalling exactly the client that asked for it.
func (s *Server) handleCompile(c *conn, req *wire.Request) *wire.Response {
	resp := &wire.Response{ID: req.ID}
	switch req.Op {
	case wire.OpCompileSubmit:
		if req.Design == "" {
			resp.Err = wire.Errf(wire.CodeBadRequest, "compilesubmit needs a design")
			return resp
		}
		if !s.allowed(req.Design) {
			resp.Err = wire.Errf(wire.CodeForbidden, "design %q not served (allowlist: %v)", req.Design, s.cfg.Allow)
			return resp
		}
		spec, err := CompileSpec(req.Design)
		if err != nil {
			resp.Err = wire.Errf(wire.CodeUnknownDesign, "%v", err)
			return resp
		}
		if req.Mode == "check" {
			cold, warm, err := farm.CheckBitIdentity(c.ctx, spec, req.N)
			if err != nil {
				resp.Err = compileErr(err)
				return resp
			}
			resp.Lines = []string{cold, warm}
			resp.Ran = 1
			return resp
		}
		var job *farm.Job
		var att farm.Attach
		switch req.Mode {
		case "", "vti":
			job, att, err = s.farm.Compile(spec)
		case "recompile":
			job, att, err = s.farm.Recompile(spec, req.N)
		default:
			resp.Err = wire.Errf(wire.CodeBadRequest, "unknown compile mode %q (want vti, recompile or check)", req.Mode)
			return resp
		}
		if err != nil {
			resp.Err = compileErr(err)
			return resp
		}
		if att != farm.AttachHit {
			// New and shared attaches hold one farm reference each; the
			// connection remembers them so a disconnect releases what this
			// client still cares about. Cache hits hold nothing.
			c.addJob(job.ID())
		}
		st := job.Status()
		resp.Value = job.ID()
		resp.Lines = []string{farm.AttachLine(job.ID(), att)}
		if terminalState(st.State) {
			resp.Ran = 1
			resp.Lines = append(resp.Lines, st.Line())
		}
		return resp

	case wire.OpCompileStatus:
		if req.Value == 0 {
			resp.Lines = s.farm.StatusLines()
			return resp
		}
		job, ok := s.farm.Job(req.Value)
		if !ok {
			resp.Err = wire.Errf(wire.CodeOp, "no compile job %d", req.Value)
			return resp
		}
		st := job.Status()
		resp.Value = job.ID()
		resp.Lines = []string{st.Line()}
		if terminalState(st.State) {
			resp.Ran = 1
		}
		return resp

	case wire.OpCompileCancel:
		job, ok := s.farm.Job(req.Value)
		if !ok {
			resp.Err = wire.Errf(wire.CodeOp, "no compile job %d", req.Value)
			return resp
		}
		if !terminalState(job.Status().State) && !c.dropJobRef(req.Value) {
			resp.Err = wire.Errf(wire.CodeForbidden,
				"connection holds no reference on job %d", req.Value)
			return resp
		}
		line, err := s.farm.CancelLine(req.Value)
		if err != nil {
			resp.Err = compileErr(err)
			return resp
		}
		resp.Value = req.Value
		resp.Lines = []string{line}
		return resp
	}
	resp.Err = wire.Errf(wire.CodeUnknownOp, "unknown op %q", req.Op)
	return resp
}

func terminalState(s farm.State) bool {
	return s == farm.StateDone || s == farm.StateFailed || s == farm.StateCancelled
}

func compileErr(err error) *wire.Error {
	if errors.Is(err, context.Canceled) {
		return wire.Errf(wire.CodeCancelled, "%v", err)
	}
	return wire.Errf(wire.CodeOp, "%v", err)
}

// addJob records one farm reference held on behalf of this connection.
func (c *conn) addJob(id uint64) {
	c.jobMu.Lock()
	if c.jobs == nil {
		c.jobs = make(map[uint64]int)
	}
	c.jobs[id]++
	c.jobMu.Unlock()
}

// dropJobRef forgets one held reference, reporting whether there was one
// to drop. The farm-side release is the caller's job.
func (c *conn) dropJobRef(id uint64) bool {
	c.jobMu.Lock()
	defer c.jobMu.Unlock()
	if c.jobs[id] <= 0 {
		return false
	}
	c.jobs[id]--
	if c.jobs[id] == 0 {
		delete(c.jobs, id)
	}
	return true
}

// releaseJobs drops every farm reference the connection still holds —
// the disconnect half of end-to-end cancellation: a client that vanishes
// mid-compile releases its claim, and a job nobody else wants stops at
// the next phase gate.
func (c *conn) releaseJobs() {
	c.jobMu.Lock()
	jobs := c.jobs
	c.jobs = nil
	c.jobMu.Unlock()
	for id, n := range jobs {
		for i := 0; i < n; i++ {
			c.srv.farm.Release(id)
		}
	}
}
