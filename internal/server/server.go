// Package server is zoomied: the remote multi-session FPGA debug daemon.
// It is to Zoomie what gdbserver/OpenOCD are to software debuggers — the
// board-side service many clients attach to over the network. Each
// attached design is a *zoomie.Session owned by one actor goroutine
// (serialized commands, no locks in dbg), boards come from a fixed-
// capacity pool, idle sessions auto-detach so abandoned clients cannot
// hold boards forever, and breakpoint hits are pushed to subscribers as
// asynchronous events over the internal/wire protocol.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"zoomie"
	"zoomie/internal/farm"
	"zoomie/internal/faults"
	"zoomie/internal/obs"
	"zoomie/internal/wire"
)

// hotCounters are the obs counters the command path bumps inline. Names
// carry a "zoomied." prefix so user-registered taps sort apart.
type hotCounters struct {
	commands *obs.Counter // commands executed by session actors
	peeks    *obs.Counter // register/memory/output reads (batch items count individually)
	pokes    *obs.Counter // register/memory/input writes (batch items count individually)
	cycles   *obs.Counter // clock cycles advanced by run/step/until
}

// Config tunes the server.
type Config struct {
	// PoolSize is the number of modeled boards (default 4).
	PoolSize int
	// IdleTimeout auto-detaches a session with no commands for this long,
	// reclaiming its board (default 5 minutes).
	IdleTimeout time.Duration
	// Allow restricts attachable designs to this list; empty serves the
	// whole catalog.
	Allow []string
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
	// Chaos, when set and enabled, interposes a seeded fault injector on
	// every leased board. Each session derives its own seed from the
	// profile's, so concurrent sessions see independent but reproducible
	// fault patterns.
	Chaos *faults.Profile
	// ProbeInterval, when positive, health-probes every live session's
	// board this often; boards that fail are quarantined and their
	// sessions migrated (default: off; zoomied -chaos enables it).
	ProbeInterval time.Duration
	// QuarantineCooldown is how long an ejected board stays out of the
	// pool before requalifying (default 1 minute).
	QuarantineCooldown time.Duration
	// ProtocolCeiling, when positive, caps the protocol version this
	// server negotiates — the compatibility hook for emulating an older
	// zoomied in mixed-fleet tests (a ceiling of 2 answers exactly as a
	// pre-binary-codec server would).
	ProtocolCeiling int
	// CompileCacheCap bounds the compile farm's shared checkpoint store
	// (entries; 0 = unbounded).
	CompileCacheCap int
	// CompileSpeculate pre-warms the first debug edit of every freshly
	// compiled design on the farm's own time.
	CompileSpeculate bool
}

// Server is a running zoomied instance.
type Server struct {
	cfg   Config
	pool  *Pool
	stats stats

	// reg is the server-wide observability registry behind "counters"
	// streams; ctr caches the hot-path counters so the per-op cost is one
	// atomic add, never a map lookup.
	reg *obs.Registry
	ctr hotCounters

	// farm is the process-wide compile service: one content-addressed
	// checkpoint store shared by every connection, so clients compiling
	// the same design serve each other's cache.
	farm *farm.Farm

	mu       sync.Mutex
	ln       net.Listener
	sessions map[uint64]*session
	conns    map[*conn]struct{}
	nextSID  uint64
	closed   bool

	nextClient uint64 // atomic: server-assigned client identities
	seedSalt   int64  // atomic: distinct chaos seeds per leased board

	probeQuit chan struct{}
	probeOnce sync.Once

	wg sync.WaitGroup // session actors + connection handlers + prober
}

// New creates a server; call Serve to accept connections.
func New(cfg Config) *Server {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 4
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Chaos != nil && !cfg.Chaos.Enabled() {
		cfg.Chaos = nil
	}
	s := &Server{
		cfg:  cfg,
		pool: NewPool(cfg.PoolSize),
		reg:  obs.NewRegistry(),
		farm: farm.New(farm.Config{
			StoreCap:  cfg.CompileCacheCap,
			Speculate: cfg.CompileSpeculate,
			Logf:      cfg.Logf,
		}),
		sessions:  make(map[uint64]*session),
		conns:     make(map[*conn]struct{}),
		probeQuit: make(chan struct{}),
	}
	s.ctr = hotCounters{
		commands: s.reg.Counter("zoomied.commands"),
		peeks:    s.reg.Counter("zoomied.peeks"),
		pokes:    s.reg.Counter("zoomied.pokes"),
		cycles:   s.reg.Counter("zoomied.cycles"),
	}
	if cfg.QuarantineCooldown > 0 {
		s.pool.SetCooldown(cfg.QuarantineCooldown)
	}
	if cfg.ProbeInterval > 0 {
		s.wg.Add(1)
		go s.probeLoop()
	}
	return s
}

// probeLoop is the health prober: every interval it enqueues a probe task
// on each live session's actor. The actor owns the board, so the probe —
// and any quarantine/migration it triggers — runs serialized with the
// session's own commands; the prober never touches a cable itself.
func (s *Server) probeLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.probeQuit:
			return
		case <-t.C:
			s.mu.Lock()
			sessions := make([]*session, 0, len(s.sessions))
			for _, sess := range s.sessions {
				sessions = append(sessions, sess)
			}
			s.mu.Unlock()
			for _, sess := range sessions {
				// Best effort: a busy queue skips this round's probe.
				sess.enqueue(context.Background(), wire.Version,
					&wire.Request{Op: opProbe}, func(*wire.Response) {})
			}
		}
	}
}

// InjectorFor returns the fault injector currently driving a session's
// board, or nil. Test and operational hook: wedging it exercises the
// probe → quarantine → migration path deterministically.
func (s *Server) InjectorFor(sid uint64) *faults.Injector {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess := s.sessions[sid]; sess != nil {
		return sess.injector.Load()
	}
	return nil
}

// Pool exposes the board pool (read-only use: capacity/quarantine
// accounting in tests and the stats dump).
func (s *Server) Pool() *Pool { return s.pool }

// Obs exposes the server-wide counter registry. Embedding tools (zcheck,
// benchmarks) register their own taps here; whatever accumulates flows
// out through any open "counters" stream.
func (s *Server) Obs() *obs.Registry { return s.reg }

// newSessionFor builds one catalog design on a pooled board, wiring in a
// freshly seeded fault injector when chaos is configured. Used both by
// attach and by migration.
func (s *Server) newSessionFor(design string) (*zoomie.Session, *zoomie.ILAMeta, *faults.Injector, *Lease, error) {
	var lease *Lease
	var inj *faults.Injector
	zs, ilaMeta, err := NewCatalogSessionILA(design, func(cfg *zoomie.DebugConfig) {
		cfg.LeaseBoard = func(dev *zoomie.Device) (*zoomie.Board, error) {
			l, lerr := s.pool.Lease(dev)
			if lerr != nil {
				return nil, lerr
			}
			lease = l
			return l.Board, nil
		}
		if s.cfg.Chaos != nil {
			p := *s.cfg.Chaos
			p.Seed += atomic.AddInt64(&s.seedSalt, 1) * 7919 // distinct, reproducible per board
			inj = faults.New(p)
			cfg.Faults = inj
		}
	})
	if err != nil {
		if lease != nil {
			lease.Release()
		}
		return nil, nil, nil, nil, err
	}
	zs.AtClose(func() error { lease.Release(); return nil })
	return zs, ilaMeta, inj, lease, nil
}

// Serve accepts connections until Shutdown (returns nil) or a listener
// error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		nc := newConn(s, c)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(2)
		go nc.readLoop()
		go nc.writeLoop()
	}
}

// Shutdown stops the server gracefully: no new connections or attaches,
// every session actor pauses its design and releases its board, and all
// connections close. Blocks until teardown completes. Idempotent.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	s.probeOnce.Do(func() { close(s.probeQuit) })
	s.broadcast(&wire.Event{Kind: wire.EvtShutdown, Detail: "server shutting down"})
	for _, sess := range sessions {
		sess.signalQuit()
	}
	for _, c := range conns {
		c.markDead()
	}
	s.wg.Wait()
	s.cfg.Logf("zoomied: shut down (%d sessions closed)", len(sessions))
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// session looks up a live session by id.
func (s *Server) session(id uint64) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// dropSession unregisters a torn-down session.
func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	atomic.AddInt64(&s.stats.sessionsActive, -1)
	s.cfg.Logf("zoomied: session %d (%s) closed", sess.id, sess.design)
}

func (s *Server) allowed(design string) bool {
	if len(s.cfg.Allow) == 0 {
		return true
	}
	for _, a := range s.cfg.Allow {
		if a == design {
			return true
		}
	}
	return false
}

// attach builds, compiles and starts a catalog design on a pooled board,
// then spawns its actor. Runs on the calling connection's read loop: a
// long compile stalls only that client.
func (s *Server) attach(c *conn, req *wire.Request) *wire.Response {
	resp := &wire.Response{ID: req.ID}
	if s.isClosed() {
		resp.Err = wire.Errf(wire.CodeShutdown, "server shutting down")
		return resp
	}
	name := req.Design
	if _, ok := Catalog()[name]; !ok {
		resp.Err = wire.Errf(wire.CodeUnknownDesign, "unknown design %q (have: %v)", name, CatalogNames())
		return resp
	}
	if !s.allowed(name) {
		resp.Err = wire.Errf(wire.CodeForbidden, "design %q not served (allowlist: %v)", name, s.cfg.Allow)
		return resp
	}
	zs, ilaMeta, inj, lease, err := s.newSessionFor(name)
	if err != nil {
		code := wire.CodeOp
		if errors.Is(err, ErrPoolExhausted) {
			code = wire.CodePoolExhausted
		}
		resp.Err = wire.Errf(code, "%s", err)
		return resp
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		zs.Close()
		resp.Err = wire.Errf(wire.CodeShutdown, "server shutting down")
		return resp
	}
	s.nextSID++
	sess := newSession(s.nextSID, name, zs, s)
	sess.lease = lease
	sess.ilaMeta = ilaMeta
	sess.injector.Store(inj)
	s.sessions[sess.id] = sess
	s.mu.Unlock()

	atomic.AddInt64(&s.stats.sessionsActive, 1)
	atomic.AddInt64(&s.stats.sessionsTotal, 1)
	s.wg.Add(1)
	go sess.loop()
	c.subscribe(sess.id)
	s.cfg.Logf("zoomied: session %d attached %s on board lease %d (%s)",
		sess.id, name, lease.ID, lease.Device)

	resp.Session = sess.id
	resp.Design = name
	resp.Device = lease.Device
	resp.Report = fmt.Sprintf("%s", zs.Result.Report)
	for _, w := range zs.Meta.Watches {
		resp.Watches = append(resp.Watches, w.Signal)
	}
	return resp
}

// broadcast pushes an event to every subscribed connection. Delivery is
// best-effort: a connection with a full outbox drops the event (counted)
// rather than stalling the emitting actor.
func (s *Server) broadcast(e *wire.Event) {
	atomic.AddInt64(&s.stats.events, 1)
	m := wire.Evt(e)
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		if !c.wants(e.Session) {
			continue
		}
		select {
		case c.out <- m:
		default:
			atomic.AddInt64(&s.stats.eventsDropped, 1)
		}
	}
}

// conn is one client connection: a read loop dispatching requests and a
// write loop owning the socket's send side, joined by the out channel.
type conn struct {
	srv *Server
	c   net.Conn
	out chan *wire.Message
	wmu sync.Mutex // serializes socket writes (writeLoop vs handshake)

	// enc/dec speak the negotiated codec: JSON until the hello exchange
	// completes, binary afterwards on v3 connections. enc is guarded by
	// wmu; dec is owned by the read loop.
	enc *wire.Encoder
	dec *wire.Decoder

	// version is the negotiated protocol version, set during handshake
	// before any request is dispatched. Batch ops are refused on v1.
	version int

	// ctx is cancelled when the connection dies, so a session actor
	// mid-way through a batched command for this client stops promptly
	// instead of finishing work nobody will read.
	ctx    context.Context
	cancel context.CancelFunc

	dead chan struct{}
	once sync.Once

	subMu  sync.Mutex
	subs   map[uint64]bool
	subAll bool

	// streams are this connection's open push channels (v3); ids are
	// per-connection, assigned at OpStreamOpen.
	streamMu   sync.Mutex
	streams    map[uint64]*stream
	nextStream uint64

	// jobs counts the compile-farm references this connection holds
	// (job id -> refs), released when the connection dies.
	jobMu sync.Mutex
	jobs  map[uint64]int
}

func newConn(s *Server, c net.Conn) *conn {
	ctx, cancel := context.WithCancel(context.Background())
	return &conn{
		srv: s,
		c:   c,
		out: make(chan *wire.Message, 256),
		// The hello exchange is always JSON; handshake() upgrades both
		// directions once a v3 connection is negotiated.
		enc:     wire.NewEncoder(c, 1),
		dec:     wire.NewDecoder(c, 1),
		ctx:     ctx,
		cancel:  cancel,
		dead:    make(chan struct{}),
		subs:    make(map[uint64]bool),
		streams: make(map[uint64]*stream),
	}
}

// markDead closes the connection exactly once, cancels its context (so
// in-flight commands it issued are abandoned), and releases both loops.
func (c *conn) markDead() {
	c.once.Do(func() {
		c.cancel()
		close(c.dead)
		c.c.Close()
		c.closeStreams()
		c.releaseJobs()
	})
}

// send queues a message for the write loop, giving up if the connection
// died — responses to a vanished client are dropped, its sessions stay
// alive until the idle timeout reclaims them.
func (c *conn) send(m *wire.Message) {
	select {
	case c.out <- m:
	case <-c.dead:
	}
}

func (c *conn) subscribe(sid uint64) {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	if sid == 0 {
		c.subAll = true
		return
	}
	c.subs[sid] = true
}

func (c *conn) wants(sid uint64) bool {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	return c.subAll || sid == 0 || c.subs[sid]
}

// writeLoop owns the socket's send side. It coalesces writev-style:
// after taking one message it drains whatever else is already queued
// (bounded by the encoder buffer) and flushes the whole burst with a
// single Write — a batch of responses or an event storm costs one
// syscall instead of one per frame.
func (c *conn) writeLoop() {
	defer c.srv.wg.Done()
	for {
		select {
		case <-c.dead:
			return
		case m := <-c.out:
			if err := c.writeBurst(m); err != nil {
				c.markDead()
				return
			}
		}
	}
}

// writeBurst queues m plus any backlog already in the out channel, then
// flushes once.
func (c *conn) writeBurst(m *wire.Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	err := c.enc.Queue(m)
	for err == nil {
		select {
		case next := <-c.out:
			err = c.enc.Queue(next)
		default:
			n, ferr := c.enc.Flush()
			atomic.AddInt64(&c.srv.stats.bytesOut, int64(n))
			return ferr
		}
	}
	return err
}

func (c *conn) readLoop() {
	defer c.srv.wg.Done()
	defer func() {
		c.markDead()
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
	}()

	if !c.handshake() {
		return
	}
	for {
		m, n, err := c.dec.Next()
		atomic.AddInt64(&c.srv.stats.bytesIn, int64(n))
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				c.srv.cfg.Logf("zoomied: read error: %v", err)
			}
			return
		}
		if m.T != wire.TReq {
			c.send(wire.Resp(&wire.Response{
				Err: wire.Errf(wire.CodeBadRequest, "clients send requests, got %q", m.T)}))
			continue
		}
		c.dispatch(m.Req)
	}
}

// writeNow writes one frame to the socket under the write mutex.
func (c *conn) writeNow(m *wire.Message) error {
	c.wmu.Lock()
	var n int
	err := c.enc.Queue(m)
	if err == nil {
		n, err = c.enc.Flush()
	}
	c.wmu.Unlock()
	atomic.AddInt64(&c.srv.stats.bytesOut, int64(n))
	return err
}

// handshake enforces the version exchange as the first frame. Replies
// are written synchronously so a rejected client reads the reason before
// the connection closes.
func (c *conn) handshake() bool {
	m, n, err := wire.ReadMessage(c.c)
	atomic.AddInt64(&c.srv.stats.bytesIn, int64(n))
	if err != nil {
		return false
	}
	if m.T != wire.TReq || m.Req.Op != wire.OpHello {
		c.writeNow(wire.Resp(&wire.Response{
			Err: wire.Errf(wire.CodeBadRequest, "first frame must be %q", wire.OpHello)}))
		return false
	}
	// Downgrade negotiation: both sides speak min(client, server) as long
	// as the client is at least MinVersion. The negotiated version comes
	// back in the hello response; a v1 client sees "1" exactly as a v1
	// server would have answered.
	if m.Req.Version < wire.MinVersion {
		c.writeNow(wire.Resp(&wire.Response{ID: m.Req.ID,
			Err: wire.Errf(wire.CodeVersion, "protocol version %d, server speaks %d..%d",
				m.Req.Version, wire.MinVersion, wire.Version)}))
		return false
	}
	c.version = wire.Version
	if p := c.srv.cfg.ProtocolCeiling; p > 0 && p < c.version {
		c.version = p
	}
	if m.Req.Version < c.version {
		c.version = m.Req.Version
	}
	// A hello carrying a client id is a reconnect: the client keeps its
	// identity so replayed in-flight requests dedupe against the actors'
	// caches. A fresh client gets the next id.
	cid := m.Req.Client
	if cid != 0 {
		atomic.AddInt64(&c.srv.stats.reconnects, 1)
		c.srv.cfg.Logf("zoomied: client %d reconnected", cid)
	} else {
		cid = atomic.AddUint64(&c.srv.nextClient, 1)
	}
	c.writeNow(wire.Resp(&wire.Response{ID: m.Req.ID, Version: c.version, Client: cid}))
	// The hello reply is the last JSON frame on a v3 connection: every
	// frame after it — both directions — uses the binary codec.
	if c.version >= 3 {
		c.wmu.Lock()
		c.enc.SetVersion(c.version)
		c.wmu.Unlock()
		c.dec.SetVersion(c.version)
	}
	return true
}

// dispatch routes one request: connection-level ops run inline, session
// ops are enqueued on the owning actor and answered asynchronously.
func (c *conn) dispatch(req *wire.Request) {
	switch req.Op {
	case wire.OpHello:
		c.send(wire.Resp(&wire.Response{ID: req.ID, Version: c.version}))
	case wire.OpAttach:
		atomic.AddInt64(&c.srv.stats.commandsServed, 1)
		c.send(wire.Resp(c.srv.attach(c, req)))
	case wire.OpStateImport:
		// Attach-with-state (v3+): the cross-daemon failover landing path.
		if c.version < 3 {
			c.send(wire.Resp(&wire.Response{ID: req.ID,
				Err: wire.Errf(wire.CodeUnknownOp, "unknown op %q", req.Op)}))
			return
		}
		atomic.AddInt64(&c.srv.stats.commandsServed, 1)
		c.send(wire.Resp(c.srv.importAttach(c, req)))
	case wire.OpStatus:
		atomic.AddInt64(&c.srv.stats.commandsServed, 1)
		c.send(wire.Resp(&wire.Response{ID: req.ID, Stats: c.srv.Stats()}))
	case wire.OpSubscribe:
		c.subscribe(req.Session)
		c.send(wire.Resp(&wire.Response{ID: req.ID, Session: req.Session}))
	case wire.OpStreamOpen, wire.OpStreamCredit, wire.OpStreamClose:
		// Stream ops arrived in v3; older connections get the same answer
		// an older server would give.
		if c.version < 3 {
			c.send(wire.Resp(&wire.Response{ID: req.ID,
				Err: wire.Errf(wire.CodeUnknownOp, "unknown op %q", req.Op)}))
			return
		}
		atomic.AddInt64(&c.srv.stats.commandsServed, 1)
		c.send(wire.Resp(c.handleStream(req)))
	case wire.OpCompileSubmit, wire.OpCompileStatus, wire.OpCompileCancel:
		// Compile-farm ops arrived in v3 alongside the stream machinery
		// that carries their progress.
		if c.version < 3 {
			c.send(wire.Resp(&wire.Response{ID: req.ID,
				Err: wire.Errf(wire.CodeUnknownOp, "unknown op %q", req.Op)}))
			return
		}
		atomic.AddInt64(&c.srv.stats.commandsServed, 1)
		c.send(wire.Resp(c.srv.handleCompile(c, req)))
	default:
		// Batch ops arrived in v2; a v1-negotiated connection gets the
		// same answer a v1 server would give.
		if c.version < 2 && (req.Op == wire.OpPeekBatch || req.Op == wire.OpPokeBatch) {
			c.send(wire.Resp(&wire.Response{ID: req.ID,
				Err: wire.Errf(wire.CodeUnknownOp, "unknown op %q", req.Op)}))
			return
		}
		// History (time-travel) ops arrived in v3.
		if c.version < 3 {
			switch req.Op {
			case wire.OpHistSeek, wire.OpHistRewind, wire.OpHistRevCont,
				wire.OpHistSave, wire.OpHistLoad, wire.OpHistStat, wire.OpHistTimelines,
				wire.OpStateExport:
				c.send(wire.Resp(&wire.Response{ID: req.ID,
					Err: wire.Errf(wire.CodeUnknownOp, "unknown op %q", req.Op)}))
				return
			}
		}
		sess := c.srv.session(req.Session)
		if sess == nil {
			c.send(wire.Resp(&wire.Response{ID: req.ID,
				Err: wire.Errf(wire.CodeNoSession, "no session %d", req.Session)}))
			return
		}
		werr := sess.enqueue(c.ctx, c.version, req,
			func(resp *wire.Response) { c.send(wire.Resp(resp)) })
		if werr != nil {
			c.send(wire.Resp(&wire.Response{ID: req.ID, Err: werr}))
		}
	}
}
