package server_test

import (
	"fmt"
	"sync"
	"testing"

	"zoomie/internal/client"
	"zoomie/internal/server"
	"zoomie/internal/wire"
)

// TestStressConcurrentClients hammers one server with several clients
// running mixed operations — some on private sessions, all of them on
// one shared session — and asserts the actor model held: the busy-flag
// tripwire in handle() counted zero mid-command interleavings. Run under
// -race this also shakes out data races across the conn/actor/pool
// layers.
func TestStressConcurrentClients(t *testing.T) {
	const (
		nClients = 4
		nIters   = 40
	)
	srv, addr := startServer(t, server.Config{PoolSize: nClients + 1})

	// One shared session all clients poke at concurrently...
	owner, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	shared, err := owner.Attach("counter")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, nClients*nIters)
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			// ...plus a private session per client for clock-advancing ops.
			own, err := c.Attach("counter")
			if err != nil {
				errs <- err
				return
			}
			// Each client also drives the shared session through its own
			// connection: four connections funneling into one actor.
			for it := 0; it < nIters; it++ {
				if err := own.Step(1 + it%3); err != nil {
					errs <- fmt.Errorf("client %d step: %w", id, err)
				}
				if _, err := own.Peek("cnt"); err != nil {
					errs <- fmt.Errorf("client %d peek: %w", id, err)
				}
				if err := own.Poke("cnt", uint64(id*1000+it)); err != nil {
					errs <- fmt.Errorf("client %d poke: %w", id, err)
				}
				// Shared-session traffic through this client's connection:
				// raw calls addressed at the shared session id.
				switch it % 3 {
				case 0:
					if _, err := c.Call(&wire.Request{Op: wire.OpPeek, Session: shared.ID, Name: "cnt"}); err != nil {
						errs <- fmt.Errorf("client %d shared peek: %w", id, err)
					}
				case 1:
					if _, err := c.Call(&wire.Request{Op: wire.OpSnapSave, Session: shared.ID}); err != nil {
						errs <- fmt.Errorf("client %d shared snapshot: %w", id, err)
					}
				case 2:
					if _, err := c.Call(&wire.Request{Op: wire.OpSessStat, Session: shared.ID}); err != nil {
						errs <- fmt.Errorf("client %d shared status: %w", id, err)
					}
				}
				if it%10 == 9 {
					if _, err := c.ServerStats(); err != nil {
						errs <- fmt.Errorf("client %d stats: %w", id, err)
					}
				}
			}
			if err := own.Detach(); err != nil {
				errs <- fmt.Errorf("client %d detach: %w", id, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.Stats()
	if st.Interleaved != 0 {
		t.Fatalf("actor serialization violated: %d commands interleaved mid-command", st.Interleaved)
	}
	wantCmds := int64(nClients * nIters * 4) // step+peek+poke+shared per iter
	if st.CommandsServed < wantCmds {
		t.Errorf("commands_served=%d, want >=%d", st.CommandsServed, wantCmds)
	}
	if st.SessionsTotal != nClients+1 {
		t.Errorf("sessions_total=%d, want %d", st.SessionsTotal, nClients+1)
	}
	if st.SessionsActive != 1 { // only the shared session remains
		t.Errorf("sessions_active=%d, want 1", st.SessionsActive)
	}
}
