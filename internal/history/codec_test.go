package history

import (
	"bytes"
	"testing"

	"zoomie/internal/sim"
)

// record drives the counter for n ticks with a couple of host writes so
// the blob exercises tick deltas, host records and keyframe rotation.
func record(t *testing.T, s *sim.Simulator, e *Engine, n int) {
	t.Helper()
	s.Poke("en", 1)
	for i := 0; i < n; i++ {
		s.Tick()
		if i == n/3 {
			s.Poke("cnt", 99)
		}
	}
}

// TestCodecRoundTrip encodes a live engine, decodes it, transplants the
// decoded copy onto a fresh simulator of the same design, and requires
// reconstruction, savestates and cursor bookkeeping to be bit-identical
// to the original.
func TestCodecRoundTrip(t *testing.T) {
	s := newSim(t)
	e := New(Config{KeyframeEvery: 8})
	e.Attach(s, "cyc")
	record(t, s, e, 50)
	if _, err := e.SaveNamed("mark"); err != nil {
		t.Fatal(err)
	}

	blob := e.Encode()
	if got := e.Encode(); !bytes.Equal(blob, got) {
		t.Fatal("Encode is not deterministic for an idle engine")
	}
	e2, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}

	// The decoded engine reconstructs identically before any transplant.
	for _, pos := range []uint64{10, 25, 50} {
		a, err := e.StateAt(pos)
		if err != nil {
			t.Fatalf("orig StateAt(%d): %v", pos, err)
		}
		b, err := e2.StateAt(pos)
		if err != nil {
			t.Fatalf("decoded StateAt(%d): %v", pos, err)
		}
		compareStates(t, pos, a, b)
	}
	ap, acy := e.Cursor()
	bp, bcy := e2.Cursor()
	if ap != bp || acy != bcy {
		t.Fatalf("cursor (%d,%d) != decoded (%d,%d)", ap, acy, bp, bcy)
	}
	if a, b := e.Stat(), e2.Stat(); a.Keyframes != b.Keyframes || a.DeltaBytes != b.DeltaBytes ||
		a.TipPos != b.TipPos || a.HorizonPos != b.HorizonPos || a.Timelines != b.Timelines {
		t.Fatalf("Stat mismatch: %+v vs %+v", a, b)
	}
	st, ok := e2.Named("mark")
	if !ok {
		t.Fatal("savestate lost in round trip")
	}
	orig, _ := e.Named("mark")
	compareStates(t, st.Pos, orig, st)

	// Transplant the decoded engine onto a fresh board and keep recording:
	// the lineage must extend seamlessly.
	s2 := newSim(t)
	if err := e2.Transplant(s2); err != nil {
		t.Fatal(err)
	}
	// Restore the tip state onto the new sim as host writes (the facade's
	// migration restore), then run forward.
	tip, err := e2.StateAt(bp)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range tip.Regs {
		s2.Poke(name, v)
	}
	for name, v := range tip.Inputs {
		s2.Poke(name, v)
	}
	for name, words := range tip.Mems {
		for i, v := range words {
			s2.PokeMem(name, i, v)
		}
	}
	for i := 0; i < 20; i++ {
		s2.Tick()
	}
	tp, _ := e2.Tip()
	if _, err := e2.StateAt(tp); err != nil {
		t.Fatalf("StateAt(tip) after transplant: %v", err)
	}
	// Pre-transplant history is still addressable through the blob'd ring.
	if _, err := e2.StateAt(25); err != nil {
		t.Fatalf("StateAt(25) after transplant: %v", err)
	}
}

// TestCodecBranchTimelines round-trips a forked engine: rewind, diverge,
// then encode/decode and verify both branches survive with lineage.
func TestCodecBranchTimelines(t *testing.T) {
	s := newSim(t)
	e := New(Config{KeyframeEvery: 8})
	e.Attach(s, "cyc")
	record(t, s, e, 40)

	// Rewind the cursor and diverge: next tick forks a timeline.
	st, err := e.StateAt(20)
	if err != nil {
		t.Fatal(err)
	}
	e.Suspend(true)
	for name, v := range st.Regs {
		s.Poke(name, v)
	}
	e.Suspend(false)
	e.SeekDone(20)
	for i := 0; i < 10; i++ {
		s.Tick()
	}
	if got := len(e.TimelineList()); got != 2 {
		t.Fatalf("timelines = %d, want 2", got)
	}

	e2, err := Decode(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	a, b := e.TimelineList(), e2.TimelineList()
	if len(a) != len(b) {
		t.Fatalf("decoded %d timelines, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timeline %d: %+v != %+v", i, a[i], b[i])
		}
	}
	ap, acy := e.Cursor()
	bp, bcy := e2.Cursor()
	if ap != bp || acy != bcy {
		t.Fatalf("cursor (%d,%d) != decoded (%d,%d)", ap, acy, bp, bcy)
	}
	sa, err := e.StateAt(ap)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := e2.StateAt(bp)
	if err != nil {
		t.Fatal(err)
	}
	compareStates(t, ap, sa, sb)
}

// TestCodecRejectsGarbage checks typed failures instead of panics on
// corrupt blobs.
func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) succeeded")
	}
	if _, err := Decode([]byte("nope")); err == nil {
		t.Fatal("Decode(garbage) succeeded")
	}
	s := newSim(t)
	e := New(Config{})
	e.Attach(s, "cyc")
	blob := e.Encode()
	for _, cut := range []int{5, len(blob) / 2, len(blob) - 1} {
		if _, err := Decode(blob[:cut]); err == nil {
			t.Fatalf("Decode(truncated at %d) succeeded", cut)
		}
	}
	if _, err := Decode(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("Decode(trailing byte) succeeded")
	}
}

func compareStates(t *testing.T, pos uint64, a, b *State) {
	t.Helper()
	if a.Pos != b.Pos || a.Cycle != b.Cycle {
		t.Fatalf("pos %d: (pos,cycle) (%d,%d) != (%d,%d)", pos, a.Pos, a.Cycle, b.Pos, b.Cycle)
	}
	if len(a.Regs) != len(b.Regs) || len(a.Inputs) != len(b.Inputs) || len(a.Mems) != len(b.Mems) {
		t.Fatalf("pos %d: shape mismatch", pos)
	}
	for k, v := range a.Regs {
		if b.Regs[k] != v {
			t.Fatalf("pos %d: reg %s = %#x, want %#x", pos, k, b.Regs[k], v)
		}
	}
	for k, v := range a.Inputs {
		if b.Inputs[k] != v {
			t.Fatalf("pos %d: input %s = %#x, want %#x", pos, k, b.Inputs[k], v)
		}
	}
	for k, v := range a.Mems {
		got := b.Mems[k]
		if len(got) != len(v) {
			t.Fatalf("pos %d: mem %s len %d, want %d", pos, k, len(got), len(v))
		}
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("pos %d: mem %s[%d] = %#x, want %#x", pos, k, i, got[i], v[i])
			}
		}
	}
}
