// Package history is the omniscient record/replay engine behind
// time-travel debugging (rewind / seek / reverse-continue / branch
// timelines).
//
// It records through the simulator's commit hook (internal/sim hook.go):
// every tick delivers exactly the register slots and memory words that
// actually changed — the same change detection that feeds the dirty-set
// settler — so recording cost is proportional to design activity, not
// design size. Deltas are varint-encoded into per-segment byte buffers;
// every KeyframeEvery ticks a full keyframe (dense copies of all state
// slots and memories) starts a new segment. Reconstructing any recorded
// position is then nearest-keyframe plus a deterministic forward walk of
// the recorded deltas — the deltas *are* the deterministic replay,
// including out-of-band host writes (debugger pokes, migration
// restores), which a live re-execution would have to re-inject by hand.
//
// Segments form a ring: when the total keyframe count exceeds
// MaxKeyframes, the globally oldest segment is evicted, advancing the
// horizon; seeks before the horizon fail with the typed
// dberr.ErrHistoryHorizon sentinel.
//
// Timelines branch instead of being destroyed: after a seek back, the
// first newly recorded tick (or host write) forks a new timeline whose
// keyframe is the exact live state at the fork, with a parent pointer at
// the fork position. Cycle→position resolution and state reconstruction
// always walk the current cursor's lineage, so the visible history is
// one coherent line from horizon to cursor.
//
// The engine never touches the cable or the debugger: it reconstructs
// state host-side and hands it to the facade, which restores it through
// the one dbg replay primitive (ReplayFrom, i.e. the configuration-frame
// Snapshot/Restore machinery).
package history

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"zoomie/internal/dberr"
	"zoomie/internal/sim"
)

// Config tunes the recording engine. Zero values select defaults.
type Config struct {
	// KeyframeEvery is the tick distance between full keyframe
	// snapshots (default 64). Smaller means faster seeks and a shorter
	// horizon for the same memory; larger amortizes keyframe cost over
	// more ticks. See DESIGN.md §5 for the trade-off.
	KeyframeEvery int
	// MaxKeyframes bounds the total number of retained segments across
	// all timelines (default 64); the horizon is KeyframeEvery *
	// MaxKeyframes ticks deep in steady state.
	MaxKeyframes int
	// MaxTimelines bounds retained branch timelines (default 8); when a
	// fork would exceed it, the oldest timeline off the current lineage
	// is garbage-collected.
	MaxTimelines int
}

func (c Config) withDefaults() Config {
	if c.KeyframeEvery <= 0 {
		c.KeyframeEvery = 64
	}
	if c.MaxKeyframes <= 0 {
		c.MaxKeyframes = 64
	}
	if c.MaxTimelines <= 0 {
		c.MaxTimelines = 8
	}
	return c
}

// State is the full architectural state at one recorded position,
// keyed by flat signal/memory name. Regs holds clocked registers
// (restorable through configuration frames); Inputs holds top-level
// input ports (restorable only by poking the simulated pins).
type State struct {
	Pos    uint64
	Cycle  uint64
	Regs   map[string]uint64
	Inputs map[string]uint64
	Mems   map[string][]uint64
}

// denseState is a State in the engine's internal dense layout.
type denseState struct {
	pos   uint64
	cycle uint64
	regs  []uint64   // indexed like Engine.slots
	mems  [][]uint64 // indexed like Engine.mems
}

// record kinds in a segment's delta buffer.
const (
	recTick = 0 // one simulator tick: cycle delta + changed slots/words
	recHost = 1 // out-of-band host write at the current position
)

// segment is one keyframe plus the encoded deltas of the ticks after it.
type segment struct {
	gen      uint64 // global creation order (stream cursor, eviction order)
	startPos uint64 // position of the keyframe
	endPos   uint64 // position of the last encoded tick (== startPos when empty)
	kf       denseState
	buf      []byte
	n        int // tick records encoded

	lastCycle          uint64 // cycle of the last tick (delta-encoding base)
	minCycle, maxCycle uint64
	hostAt             []posCycle // positions carrying host records, ascending
}

type posCycle struct {
	pos   uint64
	cycle uint64
}

// timeline is one branch of history. Positions below segs[0].startPos
// resolve through parent at forkPos.
type timeline struct {
	id        int
	parent    *timeline
	forkPos   uint64
	forkCycle uint64
	segs      []*segment
}

func (t *timeline) first() *segment { return t.segs[0] }
func (t *timeline) last() *segment  { return t.segs[len(t.segs)-1] }

// Engine records and reconstructs. All methods are safe for concurrent
// use; in practice every caller is serialized by the session actor (or
// the single-threaded local facade) already.
type Engine struct {
	mu  sync.Mutex
	cfg Config

	sim      *sim.Simulator
	slots    []sim.StateSlot
	denseOf  []int32 // sim value-array slot -> dense index, -1 = not state
	mems     []sim.StateMem
	cycleReg string
	cycleIdx int32 // sim slot of the cycle register, -1 = use positions

	seq       uint64 // last assigned position (0 = attach keyframe)
	segGen    uint64
	timelines []*timeline
	cur       *timeline // timeline being appended to
	cursorTL  *timeline
	cursor    uint64
	detached  bool // cursor behind the tip: next record forks
	pendingKF *denseState
	suspended int // nesting suspend count
	saves     map[string]*State
	nKF       int
	bytes     int64
}

// New creates an unattached engine.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), saves: make(map[string]*State)}
}

// Attach binds the engine to a simulator, captures the initial keyframe
// (position 0) and starts recording. cycleReg names the design's cycle
// counter register (the Debug Controller's cycle_count), used to tag
// every position with a user-visible cycle; if empty or unknown, cycle
// tags fall back to positions.
func (e *Engine) Attach(s *sim.Simulator, cycleReg string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bind(s, cycleReg)
	root := &timeline{id: 0}
	e.timelines = []*timeline{root}
	e.cur, e.cursorTL = root, root
	e.addSegment(root, e.captureLive(0))
	s.SetCommitHook(e)
}

// bind resolves the slot/memory layout of a simulator.
func (e *Engine) bind(s *sim.Simulator, cycleReg string) {
	e.sim = s
	e.slots = s.StateSlots()
	e.mems = s.StateMems()
	e.cycleReg = cycleReg
	e.cycleIdx = -1
	maxIdx := int32(0)
	for _, sl := range e.slots {
		if sl.Idx > maxIdx {
			maxIdx = sl.Idx
		}
	}
	e.denseOf = make([]int32, maxIdx+1)
	for i := range e.denseOf {
		e.denseOf[i] = -1
	}
	for i, sl := range e.slots {
		e.denseOf[sl.Idx] = int32(i)
		if sl.Name == cycleReg {
			e.cycleIdx = sl.Idx
		}
	}
}

// Detach stops recording and releases the simulator.
func (e *Engine) Detach() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sim != nil {
		e.sim.SetCommitHook(nil)
		e.sim = nil
	}
}

// Transplant rebinds the engine to a fresh simulator running the same
// design — the board-migration path. History, timelines and savestates
// survive; the caller is expected to restore the new board's state with
// recording live so the restore lands in history as host writes.
func (e *Engine) Transplant(s *sim.Simulator) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	slots := s.StateSlots()
	if len(slots) != len(e.slots) {
		return fmt.Errorf("history: transplant onto a different design (%d state slots, had %d)", len(slots), len(e.slots))
	}
	for i, sl := range slots {
		if sl.Name != e.slots[i].Name {
			return fmt.Errorf("history: transplant onto a different design (slot %d is %q, had %q)", i, sl.Name, e.slots[i].Name)
		}
	}
	if e.sim != nil {
		e.sim.SetCommitHook(nil)
	}
	e.bind(s, e.cycleReg)
	s.SetCommitHook(e)
	return nil
}

// Suspend pauses (true) or resumes (false) recording. Nested suspends
// stack; the engine suspends itself around its own reconstruction-driven
// restores so they never record as history.
func (e *Engine) Suspend(v bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v {
		e.suspended++
	} else if e.suspended > 0 {
		e.suspended--
	}
}

// cycleNow reads the live cycle tag.
func (e *Engine) cycleNow(pos uint64) uint64 {
	if e.cycleIdx >= 0 {
		return e.sim.SlotValue(e.cycleIdx)
	}
	return pos
}

// captureLive snapshots the simulator's current state densely.
func (e *Engine) captureLive(pos uint64) denseState {
	ds := denseState{
		pos:  pos,
		regs: make([]uint64, len(e.slots)),
		mems: make([][]uint64, len(e.mems)),
	}
	for i, sl := range e.slots {
		ds.regs[i] = e.sim.SlotValue(sl.Idx)
	}
	for i, m := range e.mems {
		ds.mems[i] = make([]uint64, m.Depth)
		e.sim.CopyMemInto(m.ID, ds.mems[i])
	}
	ds.cycle = e.cycleNow(pos)
	return ds
}

// addSegment appends a fresh segment with the given keyframe.
func (e *Engine) addSegment(t *timeline, kf denseState) *segment {
	e.segGen++
	seg := &segment{
		gen:       e.segGen,
		startPos:  kf.pos,
		endPos:    kf.pos,
		kf:        kf,
		lastCycle: kf.cycle,
		minCycle:  kf.cycle,
		maxCycle:  kf.cycle,
	}
	t.segs = append(t.segs, seg)
	e.nKF++
	return seg
}

// OnTick implements sim.CommitHook.
func (e *Engine) OnTick(_ uint64, regs []sim.RegDelta, mems []sim.MemDelta) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.suspended > 0 || e.sim == nil {
		return
	}
	e.ensureWritable()
	e.seq++
	pos := e.seq
	cyc := e.cycleNow(pos)
	seg := e.cur.last()
	n0 := len(seg.buf)
	seg.buf = append(seg.buf, recTick)
	seg.buf = binary.AppendVarint(seg.buf, int64(cyc)-int64(seg.lastCycle))
	seg.buf = e.appendDeltas(seg.buf, regs, mems)
	e.bytes += int64(len(seg.buf) - n0)
	seg.n++
	seg.endPos = pos
	seg.lastCycle = cyc
	if cyc < seg.minCycle {
		seg.minCycle = cyc
	}
	if cyc > seg.maxCycle {
		seg.maxCycle = cyc
	}
	e.cursor = pos
	if seg.n >= e.cfg.KeyframeEvery {
		e.addSegment(e.cur, e.captureLive(pos))
		e.evict()
	}
}

// OnHostWrite implements sim.CommitHook.
func (e *Engine) OnHostWrite(regs []sim.RegDelta, mems []sim.MemDelta) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.suspended > 0 || e.sim == nil {
		return
	}
	e.ensureWritable()
	seg := e.cur.last()
	n0 := len(seg.buf)
	seg.buf = append(seg.buf, recHost)
	seg.buf = e.appendDeltas(seg.buf, regs, mems)
	e.bytes += int64(len(seg.buf) - n0)
	pos := e.seq
	if len(seg.hostAt) == 0 || seg.hostAt[len(seg.hostAt)-1].pos != pos {
		seg.hostAt = append(seg.hostAt, posCycle{pos: pos, cycle: seg.lastCycle})
	}
}

func (e *Engine) appendDeltas(buf []byte, regs []sim.RegDelta, mems []sim.MemDelta) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(regs)))
	for _, d := range regs {
		buf = binary.AppendUvarint(buf, uint64(e.denseOf[d.Slot]))
		buf = binary.AppendUvarint(buf, d.Val)
	}
	buf = binary.AppendUvarint(buf, uint64(len(mems)))
	for _, d := range mems {
		buf = binary.AppendUvarint(buf, uint64(d.Mem))
		buf = binary.AppendUvarint(buf, uint64(d.Addr))
		buf = binary.AppendUvarint(buf, d.Val)
	}
	return buf
}

// ensureWritable forks a new timeline when the cursor sits behind the
// tip: history branches instead of being overwritten.
func (e *Engine) ensureWritable() {
	if !e.detached {
		return
	}
	var kf denseState
	if e.pendingKF != nil && e.pendingKF.pos == e.cursor {
		kf = *e.pendingKF
	} else if ds, err := e.reconstruct(e.cursorTL, e.cursor); err == nil {
		kf = ds
	} else {
		// Cursor fell past the horizon while detached; restart from the
		// live state as ground truth.
		kf = e.captureLive(e.cursor)
	}
	e.pendingKF = nil
	e.gcTimelines()
	tl := &timeline{
		id:        e.nextID(),
		parent:    e.cursorTL,
		forkPos:   e.cursor,
		forkCycle: kf.cycle,
	}
	e.timelines = append(e.timelines, tl)
	// The fork keyframe gets a fresh global position so position ranges
	// stay unique across timelines.
	e.seq++
	kf.pos = e.seq
	e.addSegment(tl, kf)
	e.cur, e.cursorTL = tl, tl
	e.cursor = e.seq
	e.detached = false
	e.evict()
}

func (e *Engine) nextID() int {
	id := 0
	for _, t := range e.timelines {
		if t.id >= id {
			id = t.id + 1
		}
	}
	return id
}

// gcTimelines enforces MaxTimelines before a fork: evict the oldest
// timeline that is neither the current one nor an ancestor of the
// cursor.
func (e *Engine) gcTimelines() {
	if len(e.timelines) < e.cfg.MaxTimelines {
		return
	}
	live := map[*timeline]bool{}
	for t := e.cursorTL; t != nil; t = t.parent {
		live[t] = true
	}
	live[e.cur] = true
	for i, t := range e.timelines {
		if live[t] {
			continue
		}
		for _, seg := range t.segs {
			e.bytes -= int64(len(seg.buf))
			e.nKF--
		}
		t.segs = nil
		e.timelines = append(e.timelines[:i], e.timelines[i+1:]...)
		return
	}
}

// evict enforces MaxKeyframes: drop the globally oldest segment,
// advancing the horizon. The segment holding the cursor and the
// current timeline's last segment are never evicted.
func (e *Engine) evict() {
	for e.nKF > e.cfg.MaxKeyframes {
		var victimTL *timeline
		var victim *segment
		for _, t := range e.timelines {
			if len(t.segs) == 0 {
				continue
			}
			s := t.first()
			if t == e.cur && len(t.segs) == 1 {
				continue
			}
			if e.cursorTL == t && e.cursor >= s.startPos && (len(t.segs) == 1 || e.cursor < t.segs[1].startPos) {
				continue
			}
			if victim == nil || s.gen < victim.gen {
				victimTL, victim = t, s
			}
		}
		if victim == nil {
			return
		}
		e.bytes -= int64(len(victim.buf))
		e.nKF--
		victimTL.segs = victimTL.segs[1:]
		if len(victimTL.segs) == 0 && victimTL != e.cur {
			for i, t := range e.timelines {
				if t == victimTL {
					e.timelines = append(e.timelines[:i], e.timelines[i+1:]...)
					break
				}
			}
		}
	}
}

// reconstruct rebuilds dense state at a position on a timeline lineage:
// nearest keyframe at or below pos, then a forward walk of the recorded
// deltas — the deterministic replay.
func (e *Engine) reconstruct(tl *timeline, pos uint64) (denseState, error) {
	t, p := tl, pos
	for t != nil {
		if len(t.segs) > 0 && p >= t.first().startPos && p <= t.last().endPos {
			i := sort.Search(len(t.segs), func(i int) bool { return t.segs[i].startPos > p }) - 1
			return e.walkSegment(t.segs[i], p)
		}
		if len(t.segs) > 0 && p >= t.first().startPos {
			// Between this timeline's range and its children: a gap
			// (should not happen with well-formed cursors).
			break
		}
		if t.parent == nil {
			break
		}
		if p > t.forkPos {
			break
		}
		t = t.parent
	}
	return denseState{}, dberr.E(dberr.ErrHistoryHorizon,
		"history: position %d is before the recorded horizon", pos)
}

// walkSegment applies a segment's deltas onto a copy of its keyframe up
// to and including position p (and any host writes recorded at p).
func (e *Engine) walkSegment(seg *segment, p uint64) (denseState, error) {
	ds := denseState{
		pos:   p,
		cycle: seg.kf.cycle,
		regs:  append([]uint64(nil), seg.kf.regs...),
		mems:  make([][]uint64, len(seg.kf.mems)),
	}
	for i, m := range seg.kf.mems {
		ds.mems[i] = append([]uint64(nil), m...)
	}
	cur := seg.startPos
	buf := seg.buf
	off := 0
	for off < len(buf) {
		kind := buf[off]
		off++
		if kind == recTick {
			d, n := binary.Varint(buf[off:])
			off += n
			if cur+1 > p {
				return ds, nil
			}
			cur++
			ds.cycle = uint64(int64(ds.cycle) + d)
			off = applyDeltas(buf, off, ds.regs, ds.mems)
		} else {
			// Host write at position cur <= p: part of the state the
			// design held while sitting there.
			off = applyDeltas(buf, off, ds.regs, ds.mems)
		}
	}
	if cur < p {
		return ds, fmt.Errorf("history: internal: position %d beyond segment end %d", p, cur)
	}
	return ds, nil
}

// applyDeltas decodes one record body onto dense state.
func applyDeltas(buf []byte, off int, regs []uint64, mems [][]uint64) int {
	nr, n := binary.Uvarint(buf[off:])
	off += n
	for i := uint64(0); i < nr; i++ {
		slot, n := binary.Uvarint(buf[off:])
		off += n
		val, n := binary.Uvarint(buf[off:])
		off += n
		regs[slot] = val
	}
	nm, n := binary.Uvarint(buf[off:])
	off += n
	for i := uint64(0); i < nm; i++ {
		id, n := binary.Uvarint(buf[off:])
		off += n
		addr, n := binary.Uvarint(buf[off:])
		off += n
		val, n := binary.Uvarint(buf[off:])
		off += n
		mems[id][addr] = val
	}
	return off
}

// skipDeltas advances past one record body without applying it.
func skipDeltas(buf []byte, off int) int {
	nr, n := binary.Uvarint(buf[off:])
	off += n
	for i := uint64(0); i < nr*2; i++ {
		_, n := binary.Uvarint(buf[off:])
		off += n
	}
	nm, n := binary.Uvarint(buf[off:])
	off += n
	for i := uint64(0); i < nm*3; i++ {
		_, n := binary.Uvarint(buf[off:])
		off += n
	}
	return off
}

// toState converts dense state to the name-keyed public form.
func (e *Engine) toState(ds denseState) *State {
	st := &State{
		Pos:    ds.pos,
		Cycle:  ds.cycle,
		Regs:   make(map[string]uint64, len(e.slots)),
		Inputs: make(map[string]uint64),
		Mems:   make(map[string][]uint64, len(e.mems)),
	}
	for i, sl := range e.slots {
		if sl.Input {
			st.Inputs[sl.Name] = ds.regs[i]
		} else {
			st.Regs[sl.Name] = ds.regs[i]
		}
	}
	for i, m := range e.mems {
		st.Mems[m.Name] = append([]uint64(nil), ds.mems[i]...)
	}
	return st
}

// StateAt reconstructs the full state at a recorded position on the
// cursor's lineage.
func (e *Engine) StateAt(pos uint64) (*State, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ds, err := e.reconstruct(e.cursorTL, pos)
	if err != nil {
		return nil, err
	}
	return e.toState(ds), nil
}

// PosForCycle resolves a user cycle to the recorded position on the
// cursor lineage where that cycle (most recently) completed. The whole
// recorded extent of the cursor's timeline is addressable — a rewound
// cursor can scrub forward again up to the tip it came from. Cycles
// ahead of that tip or behind the horizon fail with
// dberr.ErrHistoryHorizon.
func (e *Engine) PosForCycle(c uint64) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.posForCycle(c)
}

func (e *Engine) posForCycle(c uint64) (uint64, error) {
	upper := e.cursor
	tipCycle := e.cursorCycle()
	if len(e.cursorTL.segs) > 0 {
		if end := e.cursorTL.last().endPos; end > upper {
			upper = end
			if lc := e.cursorTL.last().lastCycle; lc > tipCycle {
				tipCycle = lc
			}
		}
	}
	for t := e.cursorTL; t != nil; t = t.parent {
		for i := len(t.segs) - 1; i >= 0; i-- {
			seg := t.segs[i]
			if seg.startPos > upper {
				continue
			}
			if c < seg.minCycle || c > seg.maxCycle {
				continue
			}
			if p, ok := segPosForCycle(seg, c, upper); ok {
				return p, nil
			}
		}
		upper = t.forkPos
	}
	if c > tipCycle {
		return 0, dberr.E(dberr.ErrHistoryHorizon,
			"history: cycle %d is ahead of the current cycle %d", c, tipCycle)
	}
	h := e.horizonCycle()
	if c < h {
		return 0, dberr.E(dberr.ErrHistoryHorizon,
			"history: cycle %d is before the recorded horizon (cycle %d)", c, h)
	}
	return 0, dberr.E(dberr.ErrHistoryHorizon,
		"history: cycle %d is not in recorded history", c)
}

// segPosForCycle finds the last position <= upper in the segment where
// the cycle tag transitioned to c (the moment cycle c completed).
func segPosForCycle(seg *segment, c, upper uint64) (uint64, bool) {
	best := uint64(0)
	found := false
	prev := seg.kf.cycle
	if prev == c && seg.startPos <= upper {
		best, found = seg.startPos, true
	}
	cur := seg.startPos
	cyc := seg.kf.cycle
	buf := seg.buf
	off := 0
	for off < len(buf) {
		kind := buf[off]
		off++
		if kind == recTick {
			d, n := binary.Varint(buf[off:])
			off += n
			cur++
			if cur > upper {
				break
			}
			prev = cyc
			cyc = uint64(int64(cyc) + d)
			if cyc == c && prev != c {
				best, found = cur, true
			}
		}
		off = skipDeltas(buf, off)
	}
	return best, found
}

// CycleAt returns the cycle tag of a recorded position on the cursor
// lineage.
func (e *Engine) CycleAt(pos uint64) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ds, err := e.reconstruct(e.cursorTL, pos)
	if err != nil {
		return 0, err
	}
	return ds.cycle, nil
}

// SeekDone moves the cursor after the facade restored the state at pos
// onto the board, and captures the exact live state (historical state
// plus the trigger-config overlay) as the keyframe a subsequent fork
// will start from.
func (e *Engine) SeekDone(pos uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cursor = pos
	e.cursorTL = e.owner(pos)
	e.detached = !(e.cursorTL == e.cur && pos == e.seq)
	if e.detached && e.sim != nil {
		kf := e.captureLive(pos)
		e.pendingKF = &kf
	} else {
		e.pendingKF = nil
	}
}

// owner locates the lineage timeline whose range covers pos, starting
// from the current timeline (positions are globally unique, so at most
// one lineage member matches).
func (e *Engine) owner(pos uint64) *timeline {
	for t := e.cur; t != nil; t = t.parent {
		if len(t.segs) > 0 && pos >= t.first().startPos && pos <= t.last().endPos {
			return t
		}
		if t.parent != nil && pos > t.forkPos {
			break
		}
	}
	return e.cursorTL
}

// Cursor returns the cursor position and its cycle tag.
func (e *Engine) Cursor() (pos, cycle uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cursor, e.cursorCycle()
}

func (e *Engine) cursorCycle() uint64 {
	if !e.detached && e.sim != nil {
		return e.cycleNow(e.cursor)
	}
	if ds, err := e.reconstruct(e.cursorTL, e.cursor); err == nil {
		return ds.cycle
	}
	return 0
}

// Tip returns the newest recorded position and cycle.
func (e *Engine) Tip() (pos, cycle uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.cur.segs) == 0 {
		return e.seq, 0
	}
	return e.seq, e.cur.last().lastCycle
}

// Horizon returns the oldest reconstructable position and cycle on the
// cursor lineage.
func (e *Engine) Horizon() (pos, cycle uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.horizon()
}

func (e *Engine) horizon() (pos, cycle uint64) {
	root := e.cursorTL
	for t := root; t != nil; t = t.parent {
		if len(t.segs) > 0 {
			root = t
		}
	}
	if len(root.segs) == 0 {
		return e.cursor, e.cursorCycle()
	}
	return root.first().startPos, root.first().kf.cycle
}

func (e *Engine) horizonCycle() uint64 {
	_, c := e.horizon()
	return c
}

// Boundary is one reverse-continue probe restart point.
type Boundary struct {
	Pos   uint64
	Cycle uint64
}

// ProbeBoundaries returns the ascending positions on the cursor lineage
// from which reverse-continue forward probes must restart: every
// keyframe, plus every position carrying host writes (a free-running
// probe cannot reproduce out-of-band writes, so each probe range is
// host-write free). Only boundaries strictly below upto are returned.
func (e *Engine) ProbeBoundaries(upto uint64) []Boundary {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Boundary
	upper := upto
	for t := e.cursorTL; t != nil; t = t.parent {
		for i := len(t.segs) - 1; i >= 0; i-- {
			seg := t.segs[i]
			if seg.startPos >= upper {
				continue
			}
			for j := len(seg.hostAt) - 1; j >= 0; j-- {
				if h := seg.hostAt[j]; h.pos < upper && h.pos > seg.startPos {
					out = append(out, Boundary{Pos: h.pos, Cycle: h.cycle})
				}
			}
			out = append(out, Boundary{Pos: seg.startPos, Cycle: seg.kf.cycle})
		}
		if t.parent == nil {
			break
		}
		upper = t.forkPos + 1
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	// Collapse duplicates (rotation keyframes share the previous
	// segment's end position).
	dedup := out[:0]
	for _, b := range out {
		if len(dedup) == 0 || dedup[len(dedup)-1].Pos != b.Pos {
			dedup = append(dedup, b)
		}
	}
	return dedup
}

// SaveNamed stores the state at the cursor under a name. Savestates are
// host-side copies: they survive ring eviction, timeline GC and board
// migration.
func (e *Engine) SaveNamed(name string) (*State, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var ds denseState
	if !e.detached && e.sim != nil {
		ds = e.captureLive(e.cursor)
		ds.pos = e.cursor
	} else {
		var err error
		ds, err = e.reconstruct(e.cursorTL, e.cursor)
		if err != nil {
			return nil, err
		}
	}
	st := e.toState(ds)
	e.saves[name] = st
	return st, nil
}

// Named returns a stored savestate.
func (e *Engine) Named(name string) (*State, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.saves[name]
	return st, ok
}

// SaveNames lists stored savestates, sorted.
func (e *Engine) SaveNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.saves))
	for n := range e.saves {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Status is a deterministic summary of the engine.
type Status struct {
	Recording    bool
	Detached     bool
	TimelineID   int
	Timelines    int
	Keyframes    int
	DeltaBytes   int64
	Savestates   int
	CursorPos    uint64
	CursorCycle  uint64
	TipPos       uint64
	TipCycle     uint64
	HorizonPos   uint64
	HorizonCycle uint64
}

// Stat reports the engine summary.
func (e *Engine) Stat() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Status{
		Recording:   e.sim != nil && e.suspended == 0,
		Detached:    e.detached,
		TimelineID:  e.cursorTL.id,
		Timelines:   len(e.timelines),
		Keyframes:   e.nKF,
		DeltaBytes:  e.bytes,
		Savestates:  len(e.saves),
		CursorPos:   e.cursor,
		CursorCycle: e.cursorCycle(),
		TipPos:      e.seq,
	}
	if len(e.cur.segs) > 0 {
		st.TipCycle = e.cur.last().lastCycle
	}
	st.HorizonPos, st.HorizonCycle = e.horizon()
	return st
}

// TimelineInfo describes one branch for display.
type TimelineInfo struct {
	ID         int
	ParentID   int // -1 for the root
	ForkCycle  uint64
	StartPos   uint64
	EndPos     uint64
	StartCycle uint64
	EndCycle   uint64
	Keyframes  int
	Current    bool
}

// TimelineList returns all live timelines in id order.
func (e *Engine) TimelineList() []TimelineInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]TimelineInfo, 0, len(e.timelines))
	for _, t := range e.timelines {
		ti := TimelineInfo{
			ID:       t.id,
			ParentID: -1,
			Current:  t == e.cursorTL,
		}
		if t.parent != nil {
			ti.ParentID = t.parent.id
			ti.ForkCycle = t.forkCycle
		}
		if len(t.segs) > 0 {
			ti.StartPos = t.first().startPos
			ti.EndPos = t.last().endPos
			ti.StartCycle = t.first().kf.cycle
			ti.EndCycle = t.last().lastCycle
			ti.Keyframes = len(t.segs)
		}
		out = append(out, ti)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// KeyframeInfo is one keyframe row for the scrubbing stream.
type KeyframeInfo struct {
	Gen   uint64
	Pos   uint64
	Cycle uint64
	Bytes uint64 // delta bytes accumulated in the segment so far
}

// KeyframesSince returns keyframes created after gen, oldest first —
// the timeline-scrubbing feed for the wire `history` stream.
func (e *Engine) KeyframesSince(gen uint64) []KeyframeInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []KeyframeInfo
	for _, t := range e.timelines {
		for _, seg := range t.segs {
			if seg.gen > gen {
				out = append(out, KeyframeInfo{
					Gen:   seg.gen,
					Pos:   seg.startPos,
					Cycle: seg.kf.cycle,
					Bytes: uint64(len(seg.buf)),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Gen < out[j].Gen })
	return out
}
