package history

import (
	"encoding/binary"
	"fmt"
	"sort"

	"zoomie/internal/sim"
)

// Blob codec: the transport form of Detach/Transplant. Encode serializes
// a complete engine — configuration, slot/memory layout, every timeline
// with its keyframes and delta buffers, the cursor, and all savestates —
// into a self-contained byte blob; Decode on another host reconstructs an
// unattached engine that Transplant() can bind to a fresh simulator of
// the same design. This is what makes cross-daemon session failover carry
// time travel along: the coordinator checkpoints the blob, and the
// restored session can still rewind past the failure.
//
// The layout is the engine's own idiom — varints throughout — with a
// 4-byte magic so version skew fails loudly instead of misparsing.
// Timelines are encoded as a flat node list covering the full
// parent-reachable graph (GC'd lineage stubs included, since forkPos
// chains still route reconstruction) with parent references by list
// index; the first nLive entries are the live e.timelines. Map-valued
// savestates are encoded in sorted key order, so equal engines produce
// byte-identical blobs.

var blobMagic = [4]byte{'z', 'h', '0', '1'}

type enc struct{ b []byte }

func (w *enc) u(v uint64)  { w.b = binary.AppendUvarint(w.b, v) }
func (w *enc) i(v int64)   { w.b = binary.AppendVarint(w.b, v) }
func (w *enc) byte(v byte) { w.b = append(w.b, v) }
func (w *enc) bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}
func (w *enc) str(s string) { w.u(uint64(len(s))); w.b = append(w.b, s...) }
func (w *enc) bytes(p []byte) {
	w.u(uint64(len(p)))
	w.b = append(w.b, p...)
}
func (w *enc) words(p []uint64) {
	w.u(uint64(len(p)))
	for _, v := range p {
		w.u(v)
	}
}

type dec struct {
	b   []byte
	off int
	err error
}

func (r *dec) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("history: decode: "+format, args...)
	}
}

func (r *dec) u() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated uvarint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *dec) i() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated varint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *dec) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated byte at %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *dec) bool() bool { return r.byte() != 0 }

// count reads a length prefix, bounds-checked against the bytes left so a
// corrupt blob cannot trigger a huge allocation: n elements of at least
// elemMin encoded bytes each must fit in the remaining payload.
func (r *dec) count(elemMin int) int {
	n := r.u()
	if r.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if n > uint64(len(r.b)-r.off)/uint64(elemMin) {
		r.fail("implausible count %d at %d", n, r.off)
		return 0
	}
	return int(n)
}

func (r *dec) str() string {
	n := r.count(1)
	if r.err != nil {
		return ""
	}
	if r.off+n > len(r.b) {
		r.fail("truncated string at %d", r.off)
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *dec) bytes() []byte {
	n := r.count(1)
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.fail("truncated bytes at %d", r.off)
		return nil
	}
	p := append([]byte(nil), r.b[r.off:r.off+n]...)
	r.off += n
	return p
}

func (r *dec) words() []uint64 {
	n := r.count(1)
	if r.err != nil {
		return nil
	}
	p := make([]uint64, n)
	for i := range p {
		p[i] = r.u()
	}
	return p
}

func (w *enc) dense(ds denseState) {
	w.u(ds.pos)
	w.u(ds.cycle)
	w.words(ds.regs)
	w.u(uint64(len(ds.mems)))
	for _, m := range ds.mems {
		w.words(m)
	}
}

func (r *dec) dense() denseState {
	ds := denseState{pos: r.u(), cycle: r.u(), regs: r.words()}
	n := r.count(1)
	ds.mems = make([][]uint64, n)
	for i := range ds.mems {
		ds.mems[i] = r.words()
	}
	return ds
}

func (w *enc) state(st *State) {
	w.u(st.Pos)
	w.u(st.Cycle)
	w.u(uint64(len(st.Regs)))
	for _, k := range sortedKeys(st.Regs) {
		w.str(k)
		w.u(st.Regs[k])
	}
	w.u(uint64(len(st.Inputs)))
	for _, k := range sortedKeys(st.Inputs) {
		w.str(k)
		w.u(st.Inputs[k])
	}
	w.u(uint64(len(st.Mems)))
	mems := make([]string, 0, len(st.Mems))
	for k := range st.Mems {
		mems = append(mems, k)
	}
	sort.Strings(mems)
	for _, k := range mems {
		w.str(k)
		w.words(st.Mems[k])
	}
}

func (r *dec) state() *State {
	st := &State{
		Pos:    r.u(),
		Cycle:  r.u(),
		Regs:   map[string]uint64{},
		Inputs: map[string]uint64{},
		Mems:   map[string][]uint64{},
	}
	for i, n := 0, r.count(2); i < n; i++ {
		k := r.str()
		st.Regs[k] = r.u()
	}
	for i, n := 0, r.count(2); i < n; i++ {
		k := r.str()
		st.Inputs[k] = r.u()
	}
	for i, n := 0, r.count(2); i < n; i++ {
		k := r.str()
		st.Mems[k] = r.words()
	}
	return st
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Encode serializes the engine into a self-contained blob. The engine
// keeps running; Encode is a read-only snapshot under the engine lock.
func (e *Engine) Encode() []byte {
	e.mu.Lock()
	defer e.mu.Unlock()

	// Flat node list: live timelines first, then GC'd lineage stubs still
	// referenced through parent pointers.
	nodes := append([]*timeline(nil), e.timelines...)
	idx := make(map[*timeline]int, len(nodes))
	for i, t := range nodes {
		idx[t] = i
	}
	for i := 0; i < len(nodes); i++ {
		if p := nodes[i].parent; p != nil {
			if _, ok := idx[p]; !ok {
				idx[p] = len(nodes)
				nodes = append(nodes, p)
			}
		}
	}

	w := &enc{b: make([]byte, 0, 4096)}
	w.b = append(w.b, blobMagic[:]...)
	w.u(uint64(e.cfg.KeyframeEvery))
	w.u(uint64(e.cfg.MaxKeyframes))
	w.u(uint64(e.cfg.MaxTimelines))
	w.str(e.cycleReg)
	w.u(uint64(len(e.slots)))
	for _, sl := range e.slots {
		w.str(sl.Name)
		w.bool(sl.Input)
	}
	w.u(uint64(len(e.mems)))
	for _, m := range e.mems {
		w.str(m.Name)
	}

	w.u(e.seq)
	w.u(e.segGen)
	w.u(e.cursor)
	w.bool(e.detached)
	w.u(uint64(e.nKF))
	w.i(e.bytes)
	w.i(int64(idx[e.cur]))
	w.i(int64(idx[e.cursorTL]))
	if e.pendingKF != nil {
		w.bool(true)
		w.dense(*e.pendingKF)
	} else {
		w.bool(false)
	}

	w.u(uint64(len(e.timelines)))
	w.u(uint64(len(nodes)))
	for _, t := range nodes {
		w.i(int64(t.id))
		if t.parent == nil {
			w.i(-1)
		} else {
			w.i(int64(idx[t.parent]))
		}
		w.u(t.forkPos)
		w.u(t.forkCycle)
		w.u(uint64(len(t.segs)))
		for _, seg := range t.segs {
			w.u(seg.gen)
			w.u(seg.startPos)
			w.u(seg.endPos)
			w.dense(seg.kf)
			w.bytes(seg.buf)
			w.u(uint64(seg.n))
			w.u(seg.lastCycle)
			w.u(seg.minCycle)
			w.u(seg.maxCycle)
			w.u(uint64(len(seg.hostAt)))
			for _, h := range seg.hostAt {
				w.u(h.pos)
				w.u(h.cycle)
			}
		}
	}

	names := make([]string, 0, len(e.saves))
	for n := range e.saves {
		names = append(names, n)
	}
	sort.Strings(names)
	w.u(uint64(len(names)))
	for _, n := range names {
		w.str(n)
		w.state(e.saves[n])
	}
	return w.b
}

// Decode reconstructs an engine from an Encode blob. The result is
// unattached (not recording): bind it to a fresh simulator of the same
// design with Transplant — slot layout is re-validated there by name.
func Decode(blob []byte) (*Engine, error) {
	if len(blob) < len(blobMagic) || string(blob[:4]) != string(blobMagic[:]) {
		return nil, fmt.Errorf("history: decode: bad magic (not a zh01 history blob)")
	}
	r := &dec{b: blob, off: 4}

	e := &Engine{saves: map[string]*State{}}
	e.cfg = Config{
		KeyframeEvery: int(r.u()),
		MaxKeyframes:  int(r.u()),
		MaxTimelines:  int(r.u()),
	}.withDefaults()
	e.cycleReg = r.str()
	e.cycleIdx = -1
	// Slot/memory layout carries names only: Transplant re-resolves
	// indices and depths against the adopting simulator, validating the
	// design by slot-name equality.
	nSlots := r.count(2)
	e.slots = make([]sim.StateSlot, nSlots)
	for i := range e.slots {
		e.slots[i].Name = r.str()
		e.slots[i].Input = r.bool()
	}
	nMems := r.count(1)
	e.mems = make([]sim.StateMem, nMems)
	for i := range e.mems {
		e.mems[i].Name = r.str()
		e.mems[i].ID = int32(i)
	}

	e.seq = r.u()
	e.segGen = r.u()
	e.cursor = r.u()
	e.detached = r.bool()
	e.nKF = int(r.u())
	e.bytes = r.i()
	curIdx := int(r.i())
	cursorIdx := int(r.i())
	if r.bool() {
		kf := r.dense()
		e.pendingKF = &kf
	}

	nLive := r.count(1)
	nNodes := r.count(1)
	if r.err == nil && (nLive > nNodes || nNodes == 0) {
		r.fail("inconsistent timeline counts live=%d nodes=%d", nLive, nNodes)
	}
	nodes := make([]*timeline, nNodes)
	parents := make([]int, nNodes)
	for i := 0; i < nNodes && r.err == nil; i++ {
		t := &timeline{id: int(r.i())}
		parents[i] = int(r.i())
		t.forkPos = r.u()
		t.forkCycle = r.u()
		nSegs := r.count(4)
		for j := 0; j < nSegs && r.err == nil; j++ {
			seg := &segment{
				gen:      r.u(),
				startPos: r.u(),
				endPos:   r.u(),
				kf:       r.dense(),
				buf:      r.bytes(),
			}
			seg.n = int(r.u())
			seg.lastCycle = r.u()
			seg.minCycle = r.u()
			seg.maxCycle = r.u()
			nHost := r.count(2)
			for k := 0; k < nHost && r.err == nil; k++ {
				seg.hostAt = append(seg.hostAt, posCycle{pos: r.u(), cycle: r.u()})
			}
			t.segs = append(t.segs, seg)
		}
		nodes[i] = t
	}
	if r.err != nil {
		return nil, r.err
	}
	for i, p := range parents {
		if p < 0 {
			continue
		}
		if p >= nNodes || p == i {
			return nil, fmt.Errorf("history: decode: bad parent index %d for timeline %d", p, i)
		}
		nodes[i].parent = nodes[p]
	}
	if curIdx < 0 || curIdx >= nNodes || cursorIdx < 0 || cursorIdx >= nNodes {
		return nil, fmt.Errorf("history: decode: cursor timeline out of range")
	}
	e.timelines = nodes[:nLive]
	e.cur = nodes[curIdx]
	e.cursorTL = nodes[cursorIdx]

	nSaves := r.count(2)
	for i := 0; i < nSaves && r.err == nil; i++ {
		name := r.str()
		e.saves[name] = r.state()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("history: decode: %d trailing bytes", len(r.b)-r.off)
	}
	return e, nil
}
