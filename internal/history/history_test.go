package history

import (
	"errors"
	"testing"

	"zoomie/internal/dberr"
	"zoomie/internal/rtl"
	"zoomie/internal/sim"
)

var oneClock = []sim.ClockSpec{{Name: "clk", Period: 1}}

// testModule is a counter with a scratch memory and a free-running cycle
// register that stands in for the Debug Controller's cycle_count.
func testModule() *rtl.Module {
	m := rtl.NewModule("hist")
	en := m.Input("en", 1)
	q := m.Output("q", 8)
	cnt := m.Reg("cnt", 8, "clk", 0)
	cyc := m.Reg("cyc", 32, "clk", 0)
	m.SetNext(cnt, rtl.Add(rtl.S(cnt), rtl.C(1, 8)))
	m.SetEnable(cnt, rtl.S(en))
	m.SetNext(cyc, rtl.Add(rtl.S(cyc), rtl.C(1, 32)))
	m.Connect(q, rtl.S(cnt))
	mem := m.Mem("scratch", 8, 8)
	mem.Write("clk", rtl.Slice(rtl.S(cnt), 2, 0), rtl.Slice(rtl.S(cnt), 7, 0), rtl.S(en))
	return m
}

func newSim(t *testing.T, opts ...sim.Options) *sim.Simulator {
	t.Helper()
	f, err := rtl.Elaborate(rtl.NewDesign("hist", testModule()))
	if err != nil {
		t.Fatal(err)
	}
	o := sim.DefaultOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	s, err := sim.NewWithOptions(f, oneClock, o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// expect compares a reconstructed State against a reference snapshot
// taken live at the same position.
func expect(t *testing.T, st *State, ref *sim.Snapshot, inputs map[string]uint64) {
	t.Helper()
	for name, want := range ref.Regs {
		if got := st.Regs[name]; got != want {
			t.Errorf("reg %s = %#x, want %#x", name, got, want)
		}
	}
	if len(st.Regs) != len(ref.Regs) {
		t.Errorf("reconstructed %d regs, want %d", len(st.Regs), len(ref.Regs))
	}
	for name, want := range ref.Mems {
		got := st.Mems[name]
		if len(got) != len(want) {
			t.Fatalf("mem %s has %d words, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("mem %s[%d] = %#x, want %#x", name, i, got[i], want[i])
			}
		}
	}
	for name, want := range inputs {
		if got := st.Inputs[name]; got != want {
			t.Errorf("input %s = %#x, want %#x", name, got, want)
		}
	}
}

// TestReconstructBitIdentical drives a recorded run with interleaved
// host pokes on both engines and requires StateAt to be bit-identical to
// live snapshots captured at every position.
func TestReconstructBitIdentical(t *testing.T) {
	for _, engine := range []sim.Engine{sim.EngineCompiled, sim.EngineInterp} {
		s := newSim(t, sim.Options{Engine: engine})
		e := New(Config{KeyframeEvery: 8})
		e.Attach(s, "cyc")
		s.Poke("en", 1)

		refs := map[uint64]*sim.Snapshot{}
		inputs := map[uint64]uint64{}
		pos := uint64(0)
		for i := 0; i < 100; i++ {
			s.Tick()
			pos++
			if i == 30 {
				s.Poke("cnt", 200) // host write lands in history
			}
			if i == 60 {
				s.Poke("en", 0) // input change lands in history
			}
			if i == 70 {
				s.Poke("en", 1)
			}
			if i%7 == 0 || i == 30 || i == 60 {
				refs[pos] = s.Snapshot("clk")
				v, _ := s.Peek("en")
				inputs[pos] = v
			}
		}
		for p, ref := range refs {
			st, err := e.StateAt(p)
			if err != nil {
				t.Fatalf("engine %v: StateAt(%d): %v", engine, p, err)
			}
			expect(t, st, ref, map[string]uint64{"en": inputs[p]})
			if st.Cycle != p {
				t.Errorf("engine %v: pos %d cycle tag %d, want %d", engine, p, st.Cycle, p)
			}
		}
	}
}

// TestPosForCycle checks cycle→position resolution, including the
// ahead-of-cursor and not-recorded error paths.
func TestPosForCycle(t *testing.T) {
	s := newSim(t)
	e := New(Config{KeyframeEvery: 8})
	e.Attach(s, "cyc")
	s.Poke("en", 1)
	s.Run(50)

	p, err := e.PosForCycle(17)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.StateAt(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycle != 17 {
		t.Errorf("cycle at resolved position = %d, want 17", st.Cycle)
	}
	if _, err := e.PosForCycle(51); !errors.Is(err, dberr.ErrHistoryHorizon) {
		t.Errorf("future cycle error = %v, want ErrHistoryHorizon", err)
	}
}

// TestHorizonEviction shrinks the ring until old segments are evicted
// and requires the typed sentinel on pre-horizon seeks while recent
// positions stay reconstructable.
func TestHorizonEviction(t *testing.T) {
	s := newSim(t)
	e := New(Config{KeyframeEvery: 4, MaxKeyframes: 3})
	e.Attach(s, "cyc")
	s.Poke("en", 1)
	s.Run(100)

	if _, err := e.StateAt(1); !errors.Is(err, dberr.ErrHistoryHorizon) {
		t.Errorf("pre-horizon StateAt error = %v, want ErrHistoryHorizon", err)
	}
	if _, err := e.PosForCycle(1); !errors.Is(err, dberr.ErrHistoryHorizon) {
		t.Errorf("pre-horizon PosForCycle error = %v, want ErrHistoryHorizon", err)
	}
	hp, hc := e.Horizon()
	if hp == 0 || hc == 0 {
		t.Errorf("horizon did not advance: pos=%d cycle=%d", hp, hc)
	}
	ref := s.Snapshot("clk")
	st, err := e.StateAt(100)
	if err != nil {
		t.Fatal(err)
	}
	expect(t, st, ref, nil)
	if got := e.Stat().Keyframes; got > 3 {
		t.Errorf("ring holds %d keyframes, want <= 3", got)
	}
}

// seekTo emulates the facade's seek: reconstruct, restore onto the sim
// with recording suspended, then move the cursor.
func seekTo(t *testing.T, e *Engine, s *sim.Simulator, pos uint64) {
	t.Helper()
	st, err := e.StateAt(pos)
	if err != nil {
		t.Fatal(err)
	}
	e.Suspend(true)
	if err := s.Restore(&sim.Snapshot{Regs: st.Regs, Mems: st.Mems}); err != nil {
		t.Fatal(err)
	}
	for name, v := range st.Inputs {
		if err := s.Poke(name, v); err != nil {
			t.Fatal(err)
		}
	}
	e.Suspend(false)
	e.SeekDone(pos)
}

// TestForkTimeline seeks back, resumes, and requires history to branch:
// the old timeline survives, the new one extends from the fork, and
// reconstruction on the new lineage crosses the fork point correctly.
func TestForkTimeline(t *testing.T) {
	s := newSim(t)
	e := New(Config{KeyframeEvery: 8})
	e.Attach(s, "cyc")
	s.Poke("en", 1)
	s.Run(40)

	seekTo(t, e, s, 20)
	if st := e.Stat(); !st.Detached {
		t.Fatal("cursor not detached after seek")
	}
	// Diverge: poke then run. The poke itself must fork the timeline.
	s.Poke("cnt", 99)
	s.Run(10)

	tls := e.TimelineList()
	if len(tls) != 2 {
		t.Fatalf("have %d timelines, want 2: %+v", len(tls), tls)
	}
	if tls[1].ParentID != 0 || tls[1].ForkCycle != 20 {
		t.Errorf("fork metadata = parent %d at cycle %d, want 0 at 20", tls[1].ParentID, tls[1].ForkCycle)
	}
	if !tls[1].Current {
		t.Error("new timeline is not current")
	}

	// On the new lineage, cycle 25 is the diverged run (cnt continued
	// from 99); reconstruct and compare against live.
	ref := s.Snapshot("clk")
	cur, _ := e.Cursor()
	st, err := e.StateAt(cur)
	if err != nil {
		t.Fatal(err)
	}
	expect(t, st, ref, nil)

	// Crossing the fork into the parent still works.
	st, err = e.StateAt(5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Regs["cnt"] != 5 {
		t.Errorf("parent-lineage cnt at pos 5 = %d, want 5", st.Regs["cnt"])
	}
}

// TestTimelineGC bounds retained branches.
func TestTimelineGC(t *testing.T) {
	s := newSim(t)
	e := New(Config{KeyframeEvery: 8, MaxTimelines: 3})
	e.Attach(s, "cyc")
	s.Poke("en", 1)
	s.Run(30)
	for i := 0; i < 6; i++ {
		seekTo(t, e, s, 10)
		s.Run(5)
	}
	if n := len(e.TimelineList()); n > 3 {
		t.Errorf("retained %d timelines, want <= 3", n)
	}
	// The current branch still reconstructs.
	cur, _ := e.Cursor()
	if _, err := e.StateAt(cur); err != nil {
		t.Fatal(err)
	}
}

// TestSavestateAcrossTransplant saves a named state, transplants the
// engine onto a fresh simulator (the board-migration path) and requires
// the savestate and continued recording to survive.
func TestSavestateAcrossTransplant(t *testing.T) {
	s := newSim(t)
	e := New(Config{KeyframeEvery: 8})
	e.Attach(s, "cyc")
	s.Poke("en", 1)
	s.Run(25)
	saved, err := e.SaveNamed("golden")
	if err != nil {
		t.Fatal(err)
	}
	if saved.Regs["cnt"] != 25 {
		t.Fatalf("savestate cnt = %d, want 25", saved.Regs["cnt"])
	}

	s2 := newSim(t)
	if err := e.Transplant(s2); err != nil {
		t.Fatal(err)
	}
	got, ok := e.Named("golden")
	if !ok || got.Regs["cnt"] != 25 {
		t.Fatalf("savestate lost across transplant: %v %v", ok, got)
	}
	// Recording continues on the new board: restore-as-host-write, run,
	// reconstruct the tip.
	if err := s2.Restore(&sim.Snapshot{Regs: saved.Regs, Mems: saved.Mems}); err != nil {
		t.Fatal(err)
	}
	s2.Poke("en", 1)
	s2.Run(5)
	ref := s2.Snapshot("clk")
	cur, _ := e.Cursor()
	st, err := e.StateAt(cur)
	if err != nil {
		t.Fatal(err)
	}
	expect(t, st, ref, nil)

	if err := e.Transplant(newDifferentSim(t)); err == nil {
		t.Error("transplant onto a different design succeeded, want error")
	}
}

func newDifferentSim(t *testing.T) *sim.Simulator {
	t.Helper()
	m := rtl.NewModule("other")
	r := m.Reg("r", 4, "clk", 0)
	m.SetNext(r, rtl.Add(rtl.S(r), rtl.C(1, 4)))
	f, err := rtl.Elaborate(rtl.NewDesign("other", m))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(f, oneClock)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestProbeBoundaries requires host-write positions to split probe
// ranges, so reverse-continue free-runs never cross an out-of-band
// write.
func TestProbeBoundaries(t *testing.T) {
	s := newSim(t)
	e := New(Config{KeyframeEvery: 8})
	e.Attach(s, "cyc")
	s.Poke("en", 1)
	s.Run(10)
	s.Poke("cnt", 77) // host write at position 10
	s.Run(10)

	bs := e.ProbeBoundaries(20)
	foundHost := false
	for _, b := range bs {
		if b.Pos == 10 {
			foundHost = true
		}
		if b.Pos >= 20 {
			t.Errorf("boundary %d >= upto 20", b.Pos)
		}
	}
	if !foundHost {
		t.Errorf("host-write position 10 missing from boundaries %+v", bs)
	}
	for i := 1; i < len(bs); i++ {
		if bs[i].Pos <= bs[i-1].Pos {
			t.Errorf("boundaries not strictly ascending: %+v", bs)
		}
	}
}

// TestSuspendStopsRecording checks that suspended ticks do not extend
// history.
func TestSuspendStopsRecording(t *testing.T) {
	s := newSim(t)
	e := New(Config{})
	e.Attach(s, "cyc")
	s.Poke("en", 1)
	s.Run(5)
	tip0, _ := e.Tip()
	e.Suspend(true)
	s.Run(5)
	e.Suspend(false)
	if tip, _ := e.Tip(); tip != tip0 {
		t.Errorf("tip advanced to %d during suspend, want %d", tip, tip0)
	}
}
