// Package zoomie is a software-like debugging platform for FPGAs,
// reproducing the system described in "Zoomie: A Software-like Debugging
// Tool for FPGAs" (ASPLOS 2024) on a fully simulated Xilinx-style
// multi-chiplet FPGA substrate.
//
// The platform has three pillars:
//
//   - The Debug Controller: generated RTL wrapped around a design that
//     provides timing-precise pause/resume via clock gating, value/cycle/
//     assertion breakpoints composed through Algorithm 1, formally
//     characterized pause buffers for ready-valid interfaces, and full
//     state readback/manipulation through configuration frames.
//
//   - Assertion Synthesis: a compiler from the practical SystemVerilog
//     Assertion subset of the paper's Table 4 to hardware monitor FSMs
//     that raise breakpoints on violation.
//
//   - VTI (Vendor Tool Incrementalizer): partition-based incremental
//     compilation with over-provisioned reconfigurable regions, giving
//     ~18x faster RTL-change-to-bitstream turnaround than the monolithic
//     vendor flow.
//
// Designs are written in a small RTL IR (see NewModule/NewDesign and the
// expression constructors), compiled onto a modeled Alveo U200/U250, and
// debugged through a gdb-flavoured API (see Debug and Session).
//
// The quickest start:
//
//	design := zoomie.NewDesign("counter", buildCounter())
//	sess, err := zoomie.Debug(design, zoomie.DebugConfig{
//	    Watches:    []string{"q"},
//	    Assertions: []string{"assert property (@(posedge clk) q != 16'hFFFF);"},
//	})
//	sess.SetValueBreakpoint("q", 1000, zoomie.BreakAny)
//	sess.RunUntilPaused(1 << 20)
//	v, _ := sess.Peek("cnt") // full visibility, no recompilation
package zoomie

import (
	"fmt"

	"zoomie/internal/core"
	"zoomie/internal/dberr"
	"zoomie/internal/dbg"
	"zoomie/internal/faults"
	"zoomie/internal/formal"
	"zoomie/internal/fpga"
	"zoomie/internal/hdl"
	"zoomie/internal/history"
	"zoomie/internal/ila"
	"zoomie/internal/jtag"
	"zoomie/internal/place"
	"zoomie/internal/rtl"
	"zoomie/internal/sim"
	"zoomie/internal/sva"
	"zoomie/internal/timing"
	"zoomie/internal/toolchain"
	"zoomie/internal/vti"
)

// RTL IR surface: designs are built from modules, signals and expressions.
type (
	// Module is a hierarchical design unit under construction.
	Module = rtl.Module
	// Design is a named module hierarchy with a top.
	Design = rtl.Design
	// Signal is a named wire, port or register within a module.
	Signal = rtl.Signal
	// Expr is a combinational expression tree.
	Expr = rtl.Expr
)

// NewModule creates an empty RTL module.
func NewModule(name string) *Module { return rtl.NewModule(name) }

// NewDesign wraps a top module into a design.
func NewDesign(name string, top *Module) *Design { return rtl.NewDesign(name, top) }

// Expression constructors, re-exported from the IR.
var (
	C          = rtl.C
	S          = rtl.S
	Not        = rtl.Not
	And        = rtl.And
	Or         = rtl.Or
	Xor        = rtl.Xor
	Add        = rtl.Add
	Sub        = rtl.Sub
	Mul        = rtl.Mul
	Eq         = rtl.Eq
	Ne         = rtl.Ne
	Lt         = rtl.Lt
	Le         = rtl.Le
	Shl        = rtl.Shl
	Shr        = rtl.Shr
	Mux        = rtl.Mux
	Slice      = rtl.Slice
	Bit        = rtl.Bit
	Concat     = rtl.Concat
	RedOr      = rtl.RedOr
	RedAnd     = rtl.RedAnd
	ZeroExt    = rtl.ZeroExt
	MemRead    = rtl.MemRead
	LogicalAnd = rtl.LogicalAnd
	LogicalOr  = rtl.LogicalOr
	LogicalNot = rtl.LogicalNot
)

// Device models.
var (
	// NewU200 builds the three-SLR Alveo U200 model.
	NewU200 = fpga.NewU200
	// NewU250 builds the four-SLR Alveo U250 model.
	NewU250 = fpga.NewU250
)

type (
	// Device is a modeled FPGA device (SLRs, tiles, frames).
	Device = fpga.Device
	// Board is a modeled FPGA card a compiled image is loaded onto.
	Board = fpga.Board
)

// NewBoard creates an unconfigured board for a device.
func NewBoard(dev *Device) *Board { return fpga.NewBoard(dev) }

// Compilation surface.
type (
	// CompileOptions configures a compile flow.
	CompileOptions = toolchain.Options
	// CompileResult is a finished compile with its report and image.
	CompileResult = toolchain.Result
	// PartitionSpec declares a VTI partition.
	PartitionSpec = place.PartitionSpec
	// VTIResult is a VTI compile, recompilable per partition.
	VTIResult = vti.Result
	// ClockSpec declares a clock domain (period/phase in ticks).
	ClockSpec = sim.ClockSpec
	// DelayModel holds the static-timing constants.
	DelayModel = timing.DelayModel
)

// Compile runs the monolithic (vendor-style) flow.
func Compile(d *Design, opts CompileOptions) (*CompileResult, error) {
	return toolchain.Compile(d, opts)
}

// CompileIncremental models the vendor's incremental mode.
func CompileIncremental(prev *CompileResult, d *Design, opts CompileOptions) (*CompileResult, error) {
	return toolchain.CompileIncremental(prev, d, opts)
}

// CompileVTI runs the initial VTI flow; opts.Partitions must be set.
func CompileVTI(d *Design, opts CompileOptions) (*VTIResult, error) {
	return vti.Compile(d, opts)
}

// Debugging surface.
type (
	// Debugger is the host-side gdb-like controller.
	Debugger = dbg.Debugger
	// DebugSnapshot is a captured copy of design state.
	DebugSnapshot = dbg.Snapshot
	// InstrumentConfig configures the Debug Controller wrapper directly;
	// most users want Debug/DebugConfig instead.
	InstrumentConfig = core.Config
	// InstrumentMeta is the host-facing instrumentation metadata.
	InstrumentMeta = core.Meta
	// BreakMode selects And- vs Or-composition of value breakpoints.
	BreakMode = dbg.BreakMode
	// PlanItem names one state element in a batched peek/poke — see
	// Debugger.PeekBatch/PokeBatch.
	PlanItem = dbg.PlanItem
	// PartialBatchError reports a batch that completed on some SLRs but
	// failed on others; errors.Is(err, ErrPartialBatch) matches it.
	PartialBatchError = dbg.PartialBatchError
)

// Typed debugger errors, re-exported from internal/dberr. These survive
// the zoomied wire protocol: errors.Is gives the same answer against a
// remote client.Session as against a local Debugger.
var (
	// ErrUnknownState: the named element is not a state element.
	ErrUnknownState = dberr.ErrUnknownState
	// ErrIsMemory: Peek/Poke used on a memory (use PeekMem/PokeMem).
	ErrIsMemory = dberr.ErrIsMemory
	// ErrIsRegister: PeekMem/PokeMem used on a register (use Peek/Poke).
	ErrIsRegister = dberr.ErrIsRegister
	// ErrOutOfRange: memory address beyond the declared depth.
	ErrOutOfRange = dberr.ErrOutOfRange
	// ErrNotWatched: value breakpoint on a signal not in Watches.
	ErrNotWatched = dberr.ErrNotWatched
	// ErrWidthMismatch: poked value wider than the element.
	ErrWidthMismatch = dberr.ErrWidthMismatch
	// ErrPartialBatch: a batch failed on a strict subset of its SLRs.
	ErrPartialBatch = dberr.ErrPartialBatch
)

// Breakpoint composition modes.
const (
	// BreakAll pauses when all armed BreakAll conditions match at once.
	BreakAll = dbg.BreakAll
	// BreakAny pauses when any armed BreakAny condition matches.
	BreakAny = dbg.BreakAny
)

// DebugClock is the never-gated clock domain of the Debug Controller.
const DebugClock = core.DebugClock

// Instrument wraps a design with the Debug Controller explicitly. Most
// users want Debug, which also compiles and launches.
func Instrument(d *Design, cfg InstrumentConfig) (*Design, *InstrumentMeta, error) {
	return core.Instrument(d, cfg)
}

// PauseBuffer generates the §3.1 pause-safe skid buffer for a ready/valid
// channel of the given data width, clocked by the (never-gated) clock.
func PauseBuffer(name string, width int, clock string) *Module {
	return core.PauseBuffer(name, width, clock)
}

// SVA surface.
type (
	// Assertion is a parsed SystemVerilog assertion.
	Assertion = sva.Assertion
	// AssertionMonitor is a synthesized hardware checker.
	AssertionMonitor = sva.Monitor
	// UnsupportedSVAError reports use of a feature outside Table 4.
	UnsupportedSVAError = sva.UnsupportedError
)

// ParseSVA parses one SystemVerilog assertion statement.
func ParseSVA(src string) (*Assertion, error) { return sva.Parse(src) }

// CompileSVA synthesizes an assertion into a monitor module clocked by
// the given domain; widths gives referenced signal widths.
func CompileSVA(a *Assertion, name, clock string, widths map[string]int) (*AssertionMonitor, error) {
	return sva.Compile(a, name, clock, widths)
}

// DebugConfig configures the one-call Debug entry point.
type DebugConfig struct {
	// Watches lists user-top output ports to expose as value-breakpoint
	// inputs.
	Watches []string
	// Assertions are SVA sources compiled into assertion breakpoints;
	// they may reference any output port of the user top by name.
	Assertions []string
	// UserClock is the clock domain to gate (default "clk").
	UserClock string
	// PauseInputs lists 1-bit input ports of the design to drive with the
	// controller's paused indication (see InstrumentConfig.PauseInputs).
	PauseInputs []string
	// ExtraClocks lists additional free-running clock domains of the
	// design (the user clock and the debug clock are always included).
	ExtraClocks []ClockSpec
	// Compile options (device, partitions, cost/delay models) — Clocks
	// and Gates are filled in automatically.
	Compile CompileOptions
	// LeaseBoard, when set, supplies the board the compiled image is
	// loaded onto — the hook the zoomied board pool uses to lease a
	// modeled card to a session. The callback receives the device the
	// compile targeted. When nil a fresh private board is created.
	LeaseBoard func(dev *Device) (*Board, error)
	// Faults, when set, interposes a seeded fault injector between the
	// JTAG cable and the board and enables the resilient transport
	// (retry, verified reads, CRC verify-after-write). Nil costs nothing.
	Faults *FaultInjector
	// Guard enables the resilient transport without fault injection —
	// verify and retry against a clean link, for overhead measurement.
	Guard bool
	// History tunes (or disables) time-travel recording; nil means
	// recording on with defaults. See HistoryConfig.
	History *HistoryConfig
}

// Fault injection and transport resilience surface.
type (
	// FaultProfile configures the seeded fault models (bit flips, drops,
	// duplicates, transient errors, latency spikes, wedges).
	FaultProfile = faults.Profile
	// FaultInjector applies one FaultProfile to one board's
	// configuration plane.
	FaultInjector = faults.Injector
	// FaultStats counts the faults an injector actually fired.
	FaultStats = faults.Stats
	// CableStats counts the resilient transport's recovery work
	// (retries, re-reads, rewrites, verification failures).
	CableStats = jtag.CableStats
)

// NewFaultInjector creates an injector for a profile; pass it via
// DebugConfig.Faults (or server Config.Chaos) to debug through a flaky
// link.
func NewFaultInjector(p FaultProfile) *FaultInjector { return faults.New(p) }

// ParseFaultProfile reads the -chaos key=value syntax, e.g.
// "flip=0.01,drop=0.005,exec=0.002,seed=42".
func ParseFaultProfile(s string) (FaultProfile, error) { return faults.ParseProfile(s) }

// Session is a live debugging session: a compiled, instrumented design
// running on a board with a debugger attached and the clock started.
type Session struct {
	*Debugger
	Meta   *InstrumentMeta
	Result *CompileResult

	hist     *history.Engine
	closed   bool
	cleanups []func() error
}

// Debug instruments a design, compiles it, configures a board and
// attaches the debugger — the five-line path from RTL to interactive
// debugging.
func Debug(d *Design, cfg DebugConfig) (*Session, error) {
	if cfg.UserClock == "" {
		cfg.UserClock = "clk"
	}
	icfg := InstrumentConfig{
		Watches:     cfg.Watches,
		UserClock:   cfg.UserClock,
		PauseInputs: cfg.PauseInputs,
	}

	// Compile assertions against the user top's output ports.
	widths := make(map[string]int)
	_, outs := d.Top.Ports()
	for _, o := range outs {
		widths[o.Name] = o.Width
	}
	widths[cfg.UserClock] = 1
	for i, src := range cfg.Assertions {
		a, err := ParseSVA(src)
		if err != nil {
			return nil, fmt.Errorf("zoomie: assertion %d: %w", i, err)
		}
		name := a.Label
		if name == "" {
			name = fmt.Sprintf("assertion%d", i)
		}
		mon, err := CompileSVA(a, name, cfg.UserClock, widths)
		if err != nil {
			return nil, fmt.Errorf("zoomie: assertion %d: %w", i, err)
		}
		bindings := make(map[string]string, len(mon.Inputs))
		for _, in := range mon.Inputs {
			bindings[in] = in
		}
		icfg.Monitors = append(icfg.Monitors, core.MonitorSpec{
			Name: name, Module: mon.Module, Bindings: bindings,
		})
	}

	wrapped, meta, err := core.Instrument(d, icfg)
	if err != nil {
		return nil, err
	}

	opts := cfg.Compile
	opts.Clocks = append([]ClockSpec{
		{Name: cfg.UserClock, Period: 1},
		{Name: DebugClock, Period: 1},
	}, cfg.ExtraClocks...)
	opts.Gates = meta.Gates()
	res, err := toolchain.Compile(wrapped, opts)
	if err != nil {
		return nil, err
	}

	var board *fpga.Board
	if cfg.LeaseBoard != nil {
		board, err = cfg.LeaseBoard(res.Options.Device)
		if err != nil {
			return nil, err
		}
	} else {
		board = fpga.NewBoard(res.Options.Device)
	}
	debugger, err := dbg.AttachWithOptions(board, res.Image, meta,
		jtag.Options{Faults: cfg.Faults, Guard: cfg.Guard})
	if err != nil {
		return nil, err
	}
	if err := debugger.Start(); err != nil {
		return nil, err
	}
	sess := &Session{Debugger: debugger, Meta: meta, Result: res}
	sess.attachHistory(cfg.History)
	return sess, nil
}

// PokeInput drives a top-level input port of the design under debug (a
// chip IO, modelled at board level rather than through configuration
// frames).
func (s *Session) PokeInput(name string, v uint64) error {
	return s.Cable.Board.Sim.Poke(name, v)
}

// PeekOutput samples a top-level output port of the design under debug.
func (s *Session) PeekOutput(name string) (uint64, error) {
	return s.Cable.Board.Sim.Peek(name)
}

// AtClose registers a cleanup to run when the session is closed — trace
// sinks to flush, board leases to release. Cleanups run in reverse
// registration order, exactly once.
func (s *Session) AtClose(fn func() error) {
	s.cleanups = append(s.cleanups, fn)
}

// Close ends the session: it pauses the design (quiescing any in-flight
// run), stops every clock domain from the host side, and runs the
// registered cleanups — flushing active trace sinks and, for
// server-owned sessions, releasing the board lease back to the pool.
// Close is idempotent; the first error encountered is returned but every
// cleanup always runs.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.hist != nil {
		s.hist.Detach()
		s.hist = nil
	}
	err := s.Pause()
	s.Cable.Board.StopClock()
	for i := len(s.cleanups) - 1; i >= 0; i-- {
		if cerr := s.cleanups[i](); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.cleanups = nil
	return err
}

// Closed reports whether Close has been called.
func (s *Session) Closed() bool { return s.closed }

// Baseline and verification tooling.

// ILAConfig configures the vendor-style Integrated Logic Analyzer
// baseline (see internal/ila): compile-time-fixed probes captured into a
// BRAM window on a trigger.
type ILAConfig = ila.Config

// ILAMeta decodes uploaded ILA capture windows.
type ILAMeta = ila.Meta

// InstrumentILA wraps a design with the traditional ILA instead of the
// Debug Controller — the baseline the paper's case studies iterate with.
func InstrumentILA(d *Design, cfg ILAConfig) (*Design, *ILAMeta, error) {
	return ila.Instrument(d, cfg)
}

// FormalOptions bounds a model-checking run.
type FormalOptions = formal.Options

// FormalResult reports a bounded check, with a counterexample trace on
// violation.
type FormalResult = formal.Result

// CheckFormal exhaustively explores a small design over all input
// sequences up to a bound, verifying that its "fail" output never rises —
// the same SVA monitors that become FPGA breakpoints can be proven here
// first (verification reuse, §2.1).
func CheckFormal(d *Design, opts FormalOptions) (*FormalResult, error) {
	return formal.Check(d, opts)
}

// ParseHDL reads a design from the .zrtl text format.
func ParseHDL(src string) (*Design, error) { return hdl.Parse(src) }

// PrintHDL serializes a design to the .zrtl text format (lossless
// round-trip with ParseHDL).
func PrintHDL(d *Design) string { return hdl.Print(d) }

// StepTrace is a waveform reconstructed by single-stepping any registers
// of the design at run time (§7.7) — see Debugger.TraceSteps.
type StepTrace = dbg.StepTrace
